// Command stardust-pack regenerates Fig 8: the packet-packing throughput
// comparison of the NetFPGA reference switch, the NDP switch, non-packed
// cells, and Stardust packed cells (Fig 8a), plus the production-trace
// mixes (Fig 8b).
package main

import (
	"flag"
	"fmt"
	"os"

	"stardust/internal/experiments"
)

func main() {
	clock := flag.Float64("clock", 150e6, "datapath clock in Hz")
	traces := flag.Bool("traces", true, "also print the Fig 8b trace mixes")
	flag.Parse()

	experiments.WriteFig8a(os.Stdout, *clock, nil)
	if *traces {
		fmt.Println()
		experiments.WriteFig8b(os.Stdout, *clock)
	}
}
