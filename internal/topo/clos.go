package topo

import "fmt"

// NodeKind distinguishes the device classes in a Stardust fabric.
type NodeKind int

// Device classes.
const (
	KindFA  NodeKind = iota // Fabric Adapter (edge)
	KindFE1                 // Fabric Element, first (aggregation) tier
	KindFE2                 // Fabric Element, second (spine) tier
)

func (k NodeKind) String() string {
	switch k {
	case KindFA:
		return "FA"
	case KindFE1:
		return "FE1"
	case KindFE2:
		return "FE2"
	}
	return "?"
}

// NodeID identifies a device in a Clos instance.
type NodeID struct {
	Kind  NodeKind
	Index int
}

func (n NodeID) String() string { return fmt.Sprintf("%s%d", n.Kind, n.Index) }

// Link is one full-duplex serial link between two devices. Ports are local
// port numbers on each side.
type Link struct {
	A     NodeID
	APort int
	B     NodeID
	BPort int
}

// Clos describes a concrete 1- or 2-tier Stardust fabric instance: Fabric
// Adapters at the edge and Fabric Elements in the fabric, individually
// wired serial links (link bundle of one, per §3.1).
type Clos struct {
	Tiers     int
	NumFA     int
	FAUplinks int // links from each FA into tier 1
	NumFE1    int
	FE1Down   int // tier-1 links facing FAs
	FE1Up     int // tier-1 links facing tier 2 (0 in a 1-tier fabric)
	NumFE2    int
	FE2Down   int // tier-2 links facing tier 1
	Links     []Link

	// spec, when set by a sizing constructor (ClosForK), is the canonical
	// shorthand Spec(); otherwise Spec derives the full clos1/clos2 form.
	spec string
}

// NewClos1 builds a single-tier fabric: numFA Fabric Adapters, each with
// faUplinks links, spread round-robin over numFE1 Fabric Elements. Used for
// the §6.1.2 Arista-7500E-style system reproduction.
func NewClos1(numFA, faUplinks, numFE1 int) (*Clos, error) {
	if numFA <= 0 || faUplinks <= 0 || numFE1 <= 0 {
		return nil, fmt.Errorf("topo: all Clos1 parameters must be positive")
	}
	total := numFA * faUplinks
	if total%numFE1 != 0 {
		return nil, fmt.Errorf("topo: %d FA links do not divide evenly over %d FEs", total, numFE1)
	}
	c := &Clos{
		Tiers:     1,
		NumFA:     numFA,
		FAUplinks: faUplinks,
		NumFE1:    numFE1,
		FE1Down:   total / numFE1,
	}
	if faUplinks%numFE1 != 0 {
		return nil, fmt.Errorf("topo: FA uplinks (%d) must be a multiple of FE count (%d) so every FA reaches every FE", faUplinks, numFE1)
	}
	// FA i uplink j -> FE (j mod numFE1); every FA reaches every FE so any
	// FE can deliver to any destination FA.
	fePort := make([]int, numFE1)
	for i := 0; i < numFA; i++ {
		for j := 0; j < faUplinks; j++ {
			fe := j % numFE1
			c.Links = append(c.Links, Link{
				A: NodeID{KindFA, i}, APort: j,
				B: NodeID{KindFE1, fe}, BPort: fePort[fe],
			})
			fePort[fe]++
		}
	}
	return c, nil
}

// NewClos2 builds a two-tier fabric in the configuration style of §6.2:
// numFA adapters with faUplinks each, numFE1 first-tier elements with
// fe1Down links facing the adapters and fe1Up links facing numFE2 spine
// elements. Constraints:
//
//	numFA*faUplinks == numFE1*fe1Down   (tier-0/1 boundary)
//	numFE1*fe1Up    == numFE2*fe2Down   (tier-1/2 boundary)
//	faUplinks % numFE1-group == 0 so the wiring below is regular
//	fe1Up % numFE2 == 0 so every FE1 reaches every FE2
func NewClos2(numFA, faUplinks, numFE1, fe1Down, fe1Up, numFE2 int) (*Clos, error) {
	if numFA*faUplinks != numFE1*fe1Down {
		return nil, fmt.Errorf("topo: FA-FE1 boundary mismatch: %d != %d", numFA*faUplinks, numFE1*fe1Down)
	}
	if numFE2 <= 0 || fe1Up <= 0 {
		return nil, fmt.Errorf("topo: two-tier fabric needs spine elements")
	}
	fe2Down := numFE1 * fe1Up / numFE2
	if numFE1*fe1Up != numFE2*fe2Down {
		return nil, fmt.Errorf("topo: FE1-FE2 boundary mismatch")
	}
	if fe1Up%numFE2 != 0 {
		return nil, fmt.Errorf("topo: fe1Up (%d) must be a multiple of numFE2 (%d)", fe1Up, numFE2)
	}
	c := &Clos{
		Tiers:     2,
		NumFA:     numFA,
		FAUplinks: faUplinks,
		NumFE1:    numFE1,
		FE1Down:   fe1Down,
		FE1Up:     fe1Up,
		NumFE2:    numFE2,
		FE2Down:   fe2Down,
	}
	// Tier 0-1: global link g = i*faUplinks+j lands on FE1 (g mod numFE1).
	// Each FA connects to faUplinks distinct FE1s (requires faUplinks <=
	// numFE1 or wraparound onto extra ports, both handled).
	fe1Port := make([]int, numFE1)
	for i := 0; i < numFA; i++ {
		for j := 0; j < faUplinks; j++ {
			g := i*faUplinks + j
			fe := g % numFE1
			c.Links = append(c.Links, Link{
				A: NodeID{KindFA, i}, APort: j,
				B: NodeID{KindFE1, fe}, BPort: fe1Port[fe],
			})
			fe1Port[fe]++
		}
	}
	// Tier 1-2: FE1 f uplink u -> FE2 (u mod numFE2); each FE1 connects
	// fe1Up/numFE2 parallel links to every FE2.
	fe2Port := make([]int, numFE2)
	for f := 0; f < numFE1; f++ {
		for u := 0; u < fe1Up; u++ {
			s := u % numFE2
			c.Links = append(c.Links, Link{
				A: NodeID{KindFE1, f}, APort: fe1Down + u,
				B: NodeID{KindFE2, s}, BPort: fe2Port[s],
			})
			fe2Port[s]++
		}
	}
	return c, nil
}

// Fig9Clos returns the exact §6.2 simulation topology: 256 FAs with 32
// uplinks, 128 first-tier FEs (64 down + 64 up), 64 spine FEs with 128
// links.
func Fig9Clos() *Clos {
	c, err := NewClos2(256, 32, 128, 64, 64, 64)
	if err != nil {
		panic(err)
	}
	return c
}

// LinksOf returns all links incident to node n.
func (c *Clos) LinksOf(n NodeID) []Link {
	var out []Link
	for _, l := range c.Links {
		if l.A == n || l.B == n {
			out = append(out, l)
		}
	}
	return out
}

// Validate checks structural invariants: port numbers in range and used at
// most once per device side.
func (c *Clos) Validate() error {
	type portKey struct {
		n NodeID
		p int
	}
	seen := make(map[portKey]bool)
	check := func(n NodeID, p int) error {
		k := portKey{n, p}
		if seen[k] {
			return fmt.Errorf("topo: port %v:%d used twice", n, p)
		}
		seen[k] = true
		var max int
		switch n.Kind {
		case KindFA:
			max = c.FAUplinks
		case KindFE1:
			max = c.FE1Down + c.FE1Up
		case KindFE2:
			max = c.FE2Down
		}
		if p < 0 || p >= max {
			return fmt.Errorf("topo: port %v:%d out of range [0,%d)", n, p, max)
		}
		return nil
	}
	for _, l := range c.Links {
		if err := check(l.A, l.APort); err != nil {
			return err
		}
		if err := check(l.B, l.BPort); err != nil {
			return err
		}
	}
	return nil
}
