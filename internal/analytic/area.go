package analytic

// Appendix C / Fig 10(d): relative silicon area and power of a Fabric
// Element (device B, BCM88790-class) vs. a standard Ethernet ToR switch
// (device A) manufactured in the same process.

// AreaRatios are the published per-block B/A ratios from Fig 10(d).
type AreaRatios struct {
	HeaderProcessing float64 // 13%: cell header parse vs programmable parser
	NetworkInterface float64 // 30%: cell extraction vs full multi-rate MAC
	OtherLogic       float64 // 60%: no protocol tables, minimal queueing
	IO               float64 // 87.5%: same serdes libraries
	RelAreaPerTbps   float64 // 66.6%
	RelPowerPerTbps  float64 // 64.8%
}

// PaperAreaRatios reproduces the Fig 10(d) table verbatim.
var PaperAreaRatios = AreaRatios{
	HeaderProcessing: 0.13,
	NetworkInterface: 0.30,
	OtherLogic:       0.60,
	IO:               0.875,
	RelAreaPerTbps:   0.666,
	RelPowerPerTbps:  0.648,
}

// AreaBreakdown is a compositional model of device A's die: the fraction of
// total area each block occupies. The defaults are calibrated so that
// applying the published per-block ratios reproduces the published
// area/Tbps ratio within ~1%, with the bandwidth normalization of the two
// actual devices (A: 12.8 Tbps ToR, B: 9.6 Tbps FE).
type AreaBreakdown struct {
	HeaderProcessing float64
	NetworkInterface float64
	OtherLogic       float64
	IO               float64
	BandwidthA       float64 // Tbps of device A
	BandwidthB       float64 // Tbps of device B
}

// DefaultAreaBreakdown reflects a contemporary ToR die: I/O ~30%,
// programmable header processing ~25%, network interfaces ~20%, remaining
// logic+buffers ~25% (cf. [19]'s observation that parser/match-action
// consume considerable area).
var DefaultAreaBreakdown = AreaBreakdown{
	HeaderProcessing: 0.25,
	NetworkInterface: 0.20,
	OtherLogic:       0.25,
	IO:               0.30,
	BandwidthA:       12.8,
	BandwidthB:       9.6,
}

// RelativeArea returns device B's area as a fraction of device A's (not
// bandwidth-normalized).
func (b AreaBreakdown) RelativeArea(r AreaRatios) float64 {
	return b.HeaderProcessing*r.HeaderProcessing +
		b.NetworkInterface*r.NetworkInterface +
		b.OtherLogic*r.OtherLogic +
		b.IO*r.IO
}

// RelativeAreaPerTbps normalizes RelativeArea by the two devices'
// bandwidths, matching the "Relative area/Tbps" row of Fig 10(d).
func (b AreaBreakdown) RelativeAreaPerTbps(r AreaRatios) float64 {
	return b.RelativeArea(r) / (b.BandwidthB / b.BandwidthA)
}

// FabricAdapterOverhead is the fraction of a Fabric Adapter die spent on
// Stardust-specific functionality (cell generation, load balancing, credit
// generation), per Appendix C: about 8%, compensated by the 70% gain per
// fabric-facing port, leaving overall FA area ~equal to device A.
const FabricAdapterOverhead = 0.08

// NetworkInterfacePortGain is the per-port area gain of a fabric interface
// vs. a full Ethernet MAC (Appendix C).
const NetworkInterfacePortGain = 0.70

// VOQMemoryBytes returns the memory consumed by n VOQs, using Appendix C's
// anchor that 128K VOQs consume roughly 4 MB.
func VOQMemoryBytes(voqs int) int64 {
	const bytesPerVOQ = 4 << 20 >> 17 // 4MB / 128K = 32 B per VOQ
	return int64(voqs) * bytesPerVOQ
}

// ReachabilityTableBits compares lookup-state requirements (Appendix C):
// device A needs an exact-match IPv4 table of N*(32+log2 k) bits for N end
// hosts; device B needs only (N/hostsPerRack)*log2(k) bits.
func ReachabilityTableBits(hosts, radix, hostsPerRack int) (toR, fabricElement int64) {
	lg := 0
	for 1<<lg < radix {
		lg++
	}
	toR = int64(hosts) * int64(32+lg)
	fabricElement = int64((hosts+hostsPerRack-1)/hostsPerRack) * int64(lg)
	return
}
