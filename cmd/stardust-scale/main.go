// Command stardust-scale regenerates the paper's analytical tables and
// figures: Fig 2 (scalability), Table 2 (element counts), Fig 3 (required
// parallelism), Fig 10d (silicon area), Fig 11 (cost and power) and
// Appendix E (resilience timing), all through the scenario engine.
package main

import (
	"flag"
	"fmt"
	"os"

	"stardust/internal/engine"
	_ "stardust/internal/scenarios"
)

func main() {
	fig := flag.String("fig", "all", "which output: 2, 3, 10d, 11, table2, appE, or all")
	k := flag.Int("k", 8, "switch radix for -fig table2")
	t := flag.Int("t", 4, "ToR uplink ports for -fig table2")
	l := flag.Int("l", 2, "links per bundle for -fig table2")
	eng := engine.AddFlags(flag.CommandLine)
	flag.Parse()

	table2 := engine.Job{Scenario: "scaling/table2", Params: engine.Params{
		"k": fmt.Sprint(*k), "t": fmt.Sprint(*t), "l": fmt.Sprint(*l),
	}}
	byFig := map[string]engine.Job{
		"2":      {Scenario: "scaling/fig2"},
		"table2": table2,
		"3":      {Scenario: "scaling/fig3"},
		"10d":    {Scenario: "scaling/fig10d"},
		"11":     {Scenario: "scaling/fig11"},
		"appE":   {Scenario: "scaling/appendixE"},
	}
	var jobs []engine.Job
	if *fig == "all" {
		jobs = []engine.Job{byFig["2"], table2, byFig["3"], byFig["10d"], byFig["11"], byFig["appE"]}
	} else if job, ok := byFig[*fig]; ok {
		jobs = []engine.Job{job}
	} else {
		fmt.Fprintf(os.Stderr, "unknown -fig %q\n", *fig)
		os.Exit(2)
	}
	engine.Main(eng, jobs)
}
