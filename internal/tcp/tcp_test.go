package tcp

import (
	"testing"

	"stardust/internal/netsim"
	"stardust/internal/sim"
)

// twoQueuePath builds a simple dumbbell: src -> q1 -> pipe -> sink,
// acks back through a dedicated reverse queue.
func dumbbell(s *sim.Simulator, rate netsim.Bps, bufBytes, ecn int) (fwdQ *netsim.Queue, fwd, rev []netsim.Handler) {
	fwdQ = netsim.NewQueue(s, "fwd", rate, bufBytes, ecn)
	revQ := netsim.NewQueue(s, "rev", rate, bufBytes, 0)
	pipe := netsim.NewPipe(s, 10*sim.Microsecond)
	fwd = []netsim.Handler{fwdQ, pipe}
	rev = []netsim.Handler{revQ, pipe, Ack}
	return
}

func TestSingleFlowCompletes(t *testing.T) {
	s := sim.New()
	cfg := DefaultConfig()
	_, fwd, rev := dumbbell(s, 10e9, 100*9000, 0)
	src := NewSource(s, cfg, "f", 1_000_000, nil)
	sink := NewSink(s, cfg, src, rev)
	src.fwd = append(fwd, sink)
	src.Start()
	s.RunUntil(100 * sim.Millisecond)
	if !src.Done {
		t.Fatalf("flow did not complete: acked %d", src.DeliveredB)
	}
	// 1MB at 10G is 800us minimum plus slow start; anything under 5ms is
	// sane.
	if fct := src.FCT(); fct > 5*sim.Millisecond || fct < 800*sim.Microsecond {
		t.Fatalf("FCT %v implausible", fct.Microseconds())
	}
	if src.Retransmits != 0 || src.Timeouts != 0 {
		t.Fatalf("uncongested flow retransmitted: %d/%d", src.Retransmits, src.Timeouts)
	}
}

func TestSlowStartDoubles(t *testing.T) {
	s := sim.New()
	cfg := DefaultConfig()
	_, fwd, rev := dumbbell(s, 100e9, 1000*9000, 0)
	src := NewSource(s, cfg, "f", 0, nil)
	sink := NewSink(s, cfg, src, rev)
	src.fwd = append(fwd, sink)
	src.Start()
	w0 := src.Cwnd()
	s.RunUntil(200 * sim.Microsecond) // a few RTTs (RTT ~ 20us)
	if src.Cwnd() < 4*w0 {
		t.Fatalf("cwnd did not grow in slow start: %v -> %v", w0, src.Cwnd())
	}
}

func TestLossRecovery(t *testing.T) {
	s := sim.New()
	cfg := DefaultConfig()
	// Tiny buffer forces drops during slow start.
	_, fwd, rev := dumbbell(s, 10e9, 5*9000, 0)
	src := NewSource(s, cfg, "f", 3_000_000, nil)
	sink := NewSink(s, cfg, src, rev)
	src.fwd = append(fwd, sink)
	src.Start()
	s.RunUntil(200 * sim.Millisecond)
	if !src.Done {
		t.Fatalf("flow did not recover from loss: acked %d of 3MB, rtx=%d to=%d",
			src.DeliveredB, src.Retransmits, src.Timeouts)
	}
	if src.Retransmits == 0 {
		t.Fatal("expected retransmissions with a 5-packet buffer")
	}
}

func TestTwoFlowsShareFairly(t *testing.T) {
	s := sim.New()
	cfg := DefaultConfig()
	q, fwdShared, _ := dumbbell(s, 10e9, 100*9000, 0)
	_ = q
	var flows []*Source
	for i := 0; i < 2; i++ {
		revQ := netsim.NewQueue(s, "rev", 10e9, 100*9000, 0)
		pipe := netsim.NewPipe(s, 10*sim.Microsecond)
		rev := []netsim.Handler{revQ, pipe, Ack}
		src := NewSource(s, cfg, "f", 0, nil)
		sink := NewSink(s, cfg, src, rev)
		src.fwd = append(append([]netsim.Handler{}, fwdShared...), sink)
		flows = append(flows, src)
		src.Start()
	}
	s.RunUntil(50 * sim.Millisecond)
	a, b := flows[0].DeliveredB, flows[1].DeliveredB
	if a == 0 || b == 0 {
		t.Fatal("a flow starved")
	}
	ratio := float64(a) / float64(b)
	if ratio < 0.5 || ratio > 2.0 {
		t.Fatalf("unfair split: %d vs %d", a, b)
	}
	total := float64(a+b) * 8 / (50e-3)
	if total < 8e9 {
		t.Fatalf("bottleneck underutilized: %.2f Gbps", total/1e9)
	}
}

// DCTCP keeps the bottleneck queue near the marking threshold instead of
// filling the buffer.
func TestDCTCPKeepsQueueShort(t *testing.T) {
	run := func(dctcp bool) (peak int, goodput float64) {
		s := sim.New()
		cfg := DefaultConfig()
		ecn := 0
		if dctcp {
			cfg.DCTCP = true
			ecn = 10 * 9000
		}
		q, fwd, rev := dumbbell(s, 10e9, 100*9000, ecn)
		src := NewSource(s, cfg, "f", 0, nil)
		sink := NewSink(s, cfg, src, rev)
		src.fwd = append(fwd, sink)
		src.Start()
		s.RunUntil(50 * sim.Millisecond)
		return q.PeakBytes, float64(src.DeliveredB) * 8 / 50e-3
	}
	renoPeak, renoGoodput := run(false)
	dctcpPeak, dctcpGoodput := run(true)
	if dctcpPeak >= renoPeak/2 {
		t.Fatalf("DCTCP queue peak %d not much below Reno %d", dctcpPeak, renoPeak)
	}
	if dctcpGoodput < 0.85*renoGoodput {
		t.Fatalf("DCTCP sacrificed too much goodput: %v vs %v", dctcpGoodput, renoGoodput)
	}
}

func TestMPTCPUsesBothPaths(t *testing.T) {
	s := sim.New()
	cfg := DefaultConfig()
	// Two disjoint 10G paths.
	var fwd [][]netsim.Handler
	var sinks []*netsim.Queue
	m := NewMPTCP(s, cfg, "m", 0, [][]netsim.Handler{nil, nil})
	for i := 0; i < 2; i++ {
		fq := netsim.NewQueue(s, "fwd", 10e9, 100*9000, 0)
		rq := netsim.NewQueue(s, "rev", 10e9, 100*9000, 0)
		pipe := netsim.NewPipe(s, 10*sim.Microsecond)
		rev := []netsim.Handler{rq, pipe, Ack}
		sub := m.Subflows[i]
		sink := NewSink(s, cfg, sub, rev)
		sub.fwd = []netsim.Handler{fq, pipe, sink}
		sinks = append(sinks, fq)
		fwd = append(fwd, sub.fwd)
	}
	m.Start()
	s.RunUntil(50 * sim.Millisecond)
	total := float64(m.DeliveredB()) * 8 / 50e-3
	if total < 15e9 {
		t.Fatalf("MPTCP only reached %.2f Gbps over two 10G paths", total/1e9)
	}
	for i, q := range sinks {
		if q.Forwarded == 0 {
			t.Fatalf("subflow %d unused", i)
		}
	}
	_ = fwd
}

func TestMPTCPFiniteFlowCompletes(t *testing.T) {
	s := sim.New()
	cfg := DefaultConfig()
	m := NewMPTCP(s, cfg, "m", 1_000_000, [][]netsim.Handler{nil, nil})
	for i := 0; i < 2; i++ {
		fq := netsim.NewQueue(s, "fwd", 10e9, 100*9000, 0)
		rq := netsim.NewQueue(s, "rev", 10e9, 100*9000, 0)
		pipe := netsim.NewPipe(s, 10*sim.Microsecond)
		sub := m.Subflows[i]
		sink := NewSink(s, cfg, sub, []netsim.Handler{rq, pipe, Ack})
		sub.fwd = []netsim.Handler{fq, pipe, sink}
	}
	done := false
	m.OnComplete = func(*MPTCP) { done = true }
	m.Start()
	s.RunUntil(100 * sim.Millisecond)
	if !done || !m.Done {
		t.Fatalf("MPTCP flow incomplete: %d of 1MB", m.DeliveredB())
	}
}

func TestDCQCNReactsToCongestion(t *testing.T) {
	s := sim.New()
	// Two DCQCN flows into one 10G ECN-marking bottleneck.
	bottleneck := netsim.NewQueue(s, "b", 10e9, 300*9000, 5*9000)
	pipe := netsim.NewPipe(s, 10*sim.Microsecond)
	var flows []*DCQCN
	for i := 0; i < 2; i++ {
		rq := netsim.NewQueue(s, "rev", 10e9, 300*9000, 0)
		d := NewDCQCN(s, "d", 9000, 10e9, 0, nil)
		sink := NewDCQCNSink(s, d, []netsim.Handler{rq, pipe, DCQCNAck})
		d.fwd = []netsim.Handler{bottleneck, pipe, sink}
		flows = append(flows, d)
		d.Start()
	}
	s.RunUntil(20 * sim.Millisecond)
	for i, d := range flows {
		if d.CNPs == 0 {
			t.Fatalf("flow %d saw no CNPs at a shared bottleneck", i)
		}
		if d.Rate() >= d.LineRate {
			t.Fatalf("flow %d never reduced rate", i)
		}
		if d.DeliveredB == 0 {
			t.Fatalf("flow %d starved", i)
		}
	}
	// Combined delivery should be near the bottleneck rate.
	total := float64(flows[0].DeliveredB+flows[1].DeliveredB) * 8 / 20e-3
	if total < 6e9 || total > 10.5e9 {
		t.Fatalf("aggregate %.2f Gbps at a 10G bottleneck", total/1e9)
	}
}

func TestDCQCNFiniteFlow(t *testing.T) {
	s := sim.New()
	q := netsim.NewQueue(s, "q", 10e9, 100*9000, 0)
	rq := netsim.NewQueue(s, "rev", 10e9, 100*9000, 0)
	pipe := netsim.NewPipe(s, 10*sim.Microsecond)
	d := NewDCQCN(s, "d", 9000, 10e9, 450_000, nil)
	sink := NewDCQCNSink(s, d, []netsim.Handler{rq, pipe, DCQCNAck})
	d.fwd = []netsim.Handler{q, pipe, sink}
	d.Start()
	s.RunUntil(50 * sim.Millisecond)
	if !d.Done {
		t.Fatalf("DCQCN flow incomplete: %d", d.DeliveredB)
	}
	// 450KB at 10G = 360us + overheads.
	if fct := d.FCT(); fct < 360*sim.Microsecond || fct > 2*sim.Millisecond {
		t.Fatalf("FCT %v", fct.Microseconds())
	}
}

// TCP over the Stardust substrate: scheduled fabric, no fabric loss, high
// goodput.
func TestTCPOverStardust(t *testing.T) {
	s := sim.New()
	sd, err := netsim.NewStardustNet(s, netsim.DefaultStardust(10e9, 2, sim.Microsecond), 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	src := NewSource(s, cfg, "f", 0, nil)
	sink := NewSink(s, cfg, src, append(sd.Route(5, 0), Ack))
	src.fwd = append(sd.Route(0, 5), sink)
	src.Start()
	s.RunUntil(50 * sim.Millisecond)
	goodput := float64(src.DeliveredB) * 8 / 50e-3
	if goodput < 8.5e9 {
		t.Fatalf("TCP over Stardust reached only %.2f Gbps", goodput/1e9)
	}
	if sd.FabricDrops() != 0 {
		t.Fatal("fabric dropped cells")
	}
}

// Incast over Stardust (§5.4): many senders, one port — fabric lossless,
// service fair.
func TestStardustIncastFairAndLossless(t *testing.T) {
	s := sim.New()
	sd, err := netsim.NewStardustNet(s, netsim.DefaultStardust(10e9, 2, sim.Microsecond), 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	var flows []*Source
	for src := 1; src < 16; src++ {
		f := NewSource(s, cfg, "f", 200_000, nil)
		sink := NewSink(s, cfg, f, append(sd.Route(0, src), Ack))
		f.fwd = append(sd.Route(src, 0), sink)
		flows = append(flows, f)
		f.Start()
	}
	s.RunUntil(100 * sim.Millisecond)
	var minB, maxB int64 = 1 << 62, 0
	for _, f := range flows {
		if !f.Done {
			t.Fatalf("incast flow incomplete: %d", f.DeliveredB)
		}
	}
	// Fairness on completion times: egress scheduler round-robins credits.
	var minT, maxT sim.Time = 1 << 62, 0
	for _, f := range flows {
		if f.DoneAt < minT {
			minT = f.DoneAt
		}
		if f.DoneAt > maxT {
			maxT = f.DoneAt
		}
	}
	if float64(minT) < 0.5*float64(maxT) {
		t.Fatalf("incast service unfair: first %v last %v", minT.Microseconds(), maxT.Microseconds())
	}
	if sd.FabricDrops() != 0 {
		t.Fatal("fabric dropped cells during incast")
	}
	_ = minB
	_ = maxB
}
