// Package parsim is a conservative-lookahead parallel discrete-event
// engine: it partitions a simulation into shards, each owning a disjoint
// set of model state with its own sim.Simulator event heap, and advances
// all shards in lock-step time windows whose width is the minimum latency
// of any cross-shard interaction (the lookahead). Within a window the
// shards run concurrently and cannot affect each other — every cross-shard
// effect is at least one lookahead in the future — so each shard's window
// is an ordinary sequential simulation. At the window barrier the engine
// flushes cross-shard mailboxes in a fixed order and runs the registered
// barrier hooks with every shard quiescent.
//
// Determinism. The engine is byte-deterministic across shard counts, not
// merely across runs: the same model partitioned over 1, 2 or 4 shards
// produces identical state, provided the model orders its same-instant
// events with explicit lanes (sim.AtLane) keyed by stable entities (e.g.
// one lane per directed link) rather than by scheduling order. A shard's
// event heap orders events by (time, lane, local sequence); cross-shard
// messages are inserted at the barrier before their window begins, so the
// (time, lane) key alone decides their place and it does not matter
// whether an event arrived through a mailbox or was scheduled locally.
// This is the devolved-controller partitioning argument applied to the
// simulator itself: the serial-link latency is a natural synchronization
// horizon, so a distributed chassis can be simulated by a distributed
// event loop without giving up a single global order of observable events.
//
// Control actions that touch state on several shards at once (link
// failures, chaos injection, telemetry scrapes) run between windows via
// At/OnBarrier, when every shard is quiescent; their times are quantized
// to window boundaries, which are a function of the lookahead only and
// therefore identical for every shard count.
package parsim

import (
	"fmt"
	"sort"
	"sync"

	"stardust/internal/sim"
)

// Config sizes an Engine.
type Config struct {
	// Shards is the number of event loops (>= 1).
	Shards int
	// Lookahead is the conservative window width: no cross-shard effect
	// may take place less than one lookahead after the action that caused
	// it. It must be positive.
	Lookahead sim.Time
	// Serial forces the shards' windows to run one after another on the
	// calling goroutine instead of in parallel. The results are identical
	// (a test asserts it); the switch exists for debugging and profiling.
	Serial bool
}

// xmsg is one cross-shard event in flight: it is scheduled into the
// destination shard's heap at the window barrier.
type xmsg struct {
	at   sim.Time
	lane int32
	act  sim.Action
	arg  uint64
}

// Shard is one event loop of the engine, owning a disjoint slice of the
// model. All state reachable from events scheduled on a shard's Simulator
// must be owned by that shard; the only sanctioned ways to touch another
// shard's state are a Port (events at least one lookahead away) and the
// engine's barrier context.
type Shard struct {
	id  int
	sm  *sim.Simulator
	eng *Engine
	out [][]xmsg // per destination shard, flushed each barrier
}

// ID returns the shard's index.
func (s *Shard) ID() int { return s.id }

// Sim returns the shard's event heap. Schedule intra-shard work here.
func (s *Shard) Sim() *sim.Simulator { return s.sm }

// To returns a lane scheduler that delivers onto shard dst: the shard's
// own Simulator when dst == s.ID() (direct heap insertion), a cross-shard
// Port otherwise. The two are interchangeable for determinism — the
// (time, lane) key decides execution order either way.
func (s *Shard) To(dst int) sim.LaneScheduler {
	if dst == s.id {
		return s.sm
	}
	return Port{src: s, dst: dst}
}

// Port schedules lane events from one shard onto another through the
// engine's mailboxes. It implements sim.LaneScheduler. Events must respect
// the lookahead: t >= Now()+Lookahead, or the destination shard might
// already have advanced past t.
type Port struct {
	src *Shard
	dst int
}

// Now returns the sending shard's clock.
func (p Port) Now() sim.Time { return p.src.sm.Now() }

// AtLane enqueues a.Act(arg) to run on the destination shard at time t.
func (p Port) AtLane(t sim.Time, lane int32, a sim.Action, arg uint64) {
	if t < p.src.sm.Now()+p.src.eng.look {
		panic(fmt.Sprintf("parsim: cross-shard event at %d violates lookahead (now %d + %d)",
			t, p.src.sm.Now(), p.src.eng.look))
	}
	p.src.out[p.dst] = append(p.src.out[p.dst], xmsg{at: t, lane: lane, act: a, arg: arg})
}

// control is one barrier-context action.
type control struct {
	at  sim.Time
	seq int
	fn  func()
}

// Engine owns the shards and the window loop.
type Engine struct {
	look     sim.Time
	serial   bool
	shards   []*Shard
	hooks    []func(now sim.Time)
	ctls     []control
	ctlSeq   int
	now      sim.Time // end of the last completed window
	inWindow bool
}

// New builds an engine with cfg.Shards fresh simulators, all at time zero.
func New(cfg Config) *Engine {
	if cfg.Shards < 1 {
		panic("parsim: need at least one shard")
	}
	if cfg.Lookahead <= 0 {
		panic("parsim: lookahead must be positive")
	}
	e := &Engine{look: cfg.Lookahead, serial: cfg.Serial}
	e.shards = make([]*Shard, cfg.Shards)
	for i := range e.shards {
		e.shards[i] = &Shard{
			id:  i,
			sm:  sim.New(),
			eng: e,
			out: make([][]xmsg, cfg.Shards),
		}
	}
	return e
}

// Shards returns the shard count.
func (e *Engine) Shards() int { return len(e.shards) }

// Shard returns shard i.
func (e *Engine) Shard(i int) *Shard { return e.shards[i] }

// Lookahead returns the window width.
func (e *Engine) Lookahead() sim.Time { return e.look }

// Now returns the synchronized time: the end of the last completed window.
// Every shard's clock equals Now between windows.
func (e *Engine) Now() sim.Time { return e.now }

// Processed sums the events executed across all shards — the event-rate
// numerator of the parscale scenario. Call it between Run calls.
func (e *Engine) Processed() uint64 {
	var n uint64
	for _, s := range e.shards {
		n += s.sm.Processed
	}
	return n
}

// Pending sums the events waiting across all shards.
func (e *Engine) Pending() int {
	n := 0
	for _, s := range e.shards {
		n += s.sm.Pending()
	}
	return n
}

// Quiet reports whether nothing remains to run: every shard's heap is
// empty and no control action is outstanding. Meaningful between windows.
func (e *Engine) Quiet() bool {
	return e.Pending() == 0 && len(e.ctls) == 0
}

// InBarrier reports whether the engine is currently in barrier context
// (controls and barrier hooks, all shards quiescent) or has not started a
// window yet. Multi-shard state such as a fabric link failure may only be
// mutated when this is true.
func (e *Engine) InBarrier() bool { return !e.inWindow }

// ceil rounds t up to a window boundary.
func (e *Engine) ceil(t sim.Time) sim.Time {
	if t <= 0 {
		return 0
	}
	return (t + e.look - 1) / e.look * e.look
}

// At registers fn to run in barrier context at the window boundary at or
// after t — all shards quiescent, clocks at the boundary. Same-boundary
// controls run in registration order. Safe to call before Run and from
// barrier context (controls and hooks may schedule further controls);
// must not be called from shard events.
func (e *Engine) At(t sim.Time, fn func()) {
	if e.inWindow {
		panic("parsim: Engine.At called from a shard event; use a Port or schedule from barrier context")
	}
	e.ctlSeq++
	c := control{at: e.ceil(t), seq: e.ctlSeq, fn: fn}
	i := sort.Search(len(e.ctls), func(i int) bool {
		if e.ctls[i].at != c.at {
			return e.ctls[i].at > c.at
		}
		return e.ctls[i].seq > c.seq
	})
	e.ctls = append(e.ctls, control{})
	copy(e.ctls[i+1:], e.ctls[i:])
	e.ctls[i] = c
}

// OnBarrier registers fn to run after every window with all shards
// quiescent, in registration order, with now = the window's end. This is
// where cross-shard reads (telemetry scrapes, invariant checks) belong.
func (e *Engine) OnBarrier(fn func(now sim.Time)) {
	e.hooks = append(e.hooks, fn)
}

// runControls executes the controls due at the window starting at `start`.
func (e *Engine) runControls(start sim.Time) {
	for len(e.ctls) > 0 && e.ctls[0].at <= start {
		c := e.ctls[0]
		e.ctls = e.ctls[1:]
		c.fn()
	}
}

// flush moves every outbox message into its destination heap, source
// shards in index order, messages in send order. Same-lane messages can
// only originate from one shard (a lane names one sending entity), so this
// order is itself partition-independent; across lanes the heap key decides
// and insertion order is irrelevant.
func (e *Engine) flush() {
	for _, src := range e.shards {
		for dst, msgs := range src.out {
			if len(msgs) == 0 {
				continue
			}
			dsm := e.shards[dst].sm
			for _, m := range msgs {
				dsm.AtLane(m.at, m.lane, m.act, m.arg)
			}
			src.out[dst] = msgs[:0]
		}
	}
}

// Run advances every shard to the window boundary at or after until.
func (e *Engine) Run(until sim.Time) {
	e.advance(until, false)
}

// RunUntilQuiet advances window by window until nothing remains to run or
// the boundary at/after max is reached, and returns the synchronized time.
// Use it to drain a simulation whose drivers have stopped scheduling.
func (e *Engine) RunUntilQuiet(max sim.Time) sim.Time {
	e.advance(max, true)
	return e.now
}

// Mail is one cross-shard message in exported form — the unit the
// distributed runtime (internal/distsim) serializes over the wire. Inside
// one process the Act value is a live model object; a distributed peer
// encodes it with a model codec at the barrier and the receiving peer
// decodes it against its own replica of the model.
type Mail struct {
	At   sim.Time
	Lane int32
	Act  sim.Action
	Arg  uint64
}

// OwnedPending counts the events pending on the owned subset of shards.
// On a distributed replica only the owned shards execute, so the global
// pending count is the sum of OwnedPending over all peers — unowned
// replicas' heaps hold stale build-time events that are executed (and
// therefore drained) only by their owner.
func (e *Engine) OwnedPending(owned []bool) int {
	n := 0
	for i, s := range e.shards {
		if owned[i] {
			n += s.sm.Pending()
		}
	}
	return n
}

// OwnedProcessed sums executed events over the owned shards.
func (e *Engine) OwnedProcessed(owned []bool) uint64 {
	var n uint64
	for i, s := range e.shards {
		if owned[i] {
			n += s.sm.Processed
		}
	}
	return n
}

// ControlsPending returns the number of registered barrier controls that
// have not run yet. Controls are part of the replicated model (every
// distributed replica registers the same schedule), so any replica's count
// is the global count.
func (e *Engine) ControlsPending() int { return len(e.ctls) }

// DeliverMail inserts one cross-shard message into shard dst's heap — the
// receiving half of a distributed mailbox flush. Call it in barrier
// context, before the window the message belongs to begins; the lookahead
// guarantees m.At lies in that window or later, and the (time, lane) key
// orders it exactly as a locally flushed message. Messages on one lane
// must be delivered in their send order (they originate from a single
// sending entity); across lanes the order of DeliverMail calls is
// irrelevant.
func (e *Engine) DeliverMail(dst int, m Mail) {
	if e.inWindow {
		panic("parsim: DeliverMail outside barrier context")
	}
	e.shards[dst].sm.AtLane(m.At, m.Lane, m.Act, m.Arg)
}

// StepOwned advances exactly one window — the distributed counterpart of
// one iteration of Run's loop. It runs the controls due at the window
// start, executes the window on every shard with owned[i] == true
// (concurrently when there are several), advances unowned shards' clocks
// without executing them, flushes the mailboxes — pairs inside the owned
// set go straight to the destination heap, mail leaving it is handed to
// emit in (source shard, send order) — and runs the barrier hooks. The
// caller must deliver the mail it receives from other peers (DeliverMail)
// before the next StepOwned. Returns the new synchronized time.
//
// With every shard owned and emit nil this is bit-identical to one window
// of Run — the property the distributed determinism tests assert.
func (e *Engine) StepOwned(owned []bool, emit func(src, dst int, m Mail)) sim.Time {
	if e.inWindow {
		panic("parsim: StepOwned re-entered from a window")
	}
	if len(owned) != len(e.shards) {
		panic("parsim: StepOwned ownership length does not match shard count")
	}
	start := e.now
	end := start + e.look
	e.runControls(start)
	e.inWindow = true
	nOwned := 0
	for i := range e.shards {
		if owned[i] {
			nOwned++
		}
	}
	if nOwned > 1 && !e.serial {
		var wg sync.WaitGroup
		for i, s := range e.shards {
			if !owned[i] {
				continue
			}
			wg.Add(1)
			go func(s *Shard) {
				s.sm.RunBefore(end)
				wg.Done()
			}(s)
		}
		wg.Wait()
	} else {
		for i, s := range e.shards {
			if owned[i] {
				s.sm.RunBefore(end)
			}
		}
	}
	for i, s := range e.shards {
		if !owned[i] {
			s.sm.SkipTo(end)
		}
	}
	e.inWindow = false
	for _, src := range e.shards {
		for dst, msgs := range src.out {
			if len(msgs) == 0 {
				continue
			}
			if owned[dst] {
				dsm := e.shards[dst].sm
				for _, m := range msgs {
					dsm.AtLane(m.at, m.lane, m.act, m.arg)
				}
			} else {
				for _, m := range msgs {
					emit(src.id, dst, Mail{At: m.at, Lane: m.lane, Act: m.act, Arg: m.arg})
				}
			}
			src.out[dst] = msgs[:0]
		}
	}
	e.now = end
	for _, fn := range e.hooks {
		fn(end)
	}
	return end
}

func (e *Engine) advance(until sim.Time, stopWhenQuiet bool) {
	until = e.ceil(until)
	parallel := len(e.shards) > 1 && !e.serial

	// Workers live for one advance call, not for the Engine: persistent
	// workers would need an explicit Close lifecycle (an abandoned Engine
	// would leak goroutines parked on their channels), and the spawn cost
	// is amortized over every window of the call.
	var work []chan sim.Time
	var wg sync.WaitGroup
	if parallel && e.now < until {
		work = make([]chan sim.Time, len(e.shards))
		for i := range work {
			ch := make(chan sim.Time)
			work[i] = ch
			go func(s *Shard) {
				for end := range ch {
					s.sm.RunBefore(end)
					wg.Done()
				}
			}(e.shards[i])
		}
		defer func() {
			for _, ch := range work {
				close(ch)
			}
		}()
	}

	for e.now < until {
		start := e.now
		end := start + e.look
		e.runControls(start)
		if stopWhenQuiet && e.Quiet() {
			return
		}
		e.inWindow = true
		if parallel {
			wg.Add(len(e.shards))
			for _, ch := range work {
				ch <- end
			}
			wg.Wait()
		} else {
			for _, s := range e.shards {
				s.sm.RunBefore(end)
			}
		}
		e.inWindow = false
		e.flush()
		e.now = end
		for _, fn := range e.hooks {
			fn(end)
		}
	}
}
