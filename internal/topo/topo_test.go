package topo

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol*math.Abs(b)+1e-9 }

func TestTable2PrintedRows(t *testing.T) {
	p := Params{K: 8, T: 4, L: 2}
	k, tt, l := 8.0, 4.0, 2.0
	cases := []struct {
		tiers                               int
		tors, switches, perToR, bundles, lp float64
	}{
		{1, k, tt, tt / k, tt * k, tt * l},
		{2, k * k / 2, 1.5 * tt * k, 3 * tt / k, tt * k * k, 2 * tt * l},
		{3, k * k * k / 4, 1.25 * tt * k * k, 5 * tt / k, 0.75 * tt * k * k * k, 3 * tt * l},
		{4, k * k * k * k / 8, 7.0 / 8 * tt * k * k * k, 7 * tt / k, 7.0 / 8 * tt * k * k * k * k, 7 * tt * l},
	}
	for _, c := range cases {
		ec := Table2(p, c.tiers)
		if !approx(ec.MaxToRs, c.tors, 0) {
			t.Errorf("tiers=%d MaxToRs=%v want %v", c.tiers, ec.MaxToRs, c.tors)
		}
		if !approx(ec.MaxSwitches, c.switches, 0) {
			t.Errorf("tiers=%d MaxSwitches=%v want %v", c.tiers, ec.MaxSwitches, c.switches)
		}
		if !approx(ec.SwitchesPerToR, c.perToR, 0) {
			t.Errorf("tiers=%d SwitchesPerToR=%v want %v", c.tiers, ec.SwitchesPerToR, c.perToR)
		}
		if !approx(ec.LinkBundles, c.bundles, 0) {
			t.Errorf("tiers=%d LinkBundles=%v want %v", c.tiers, ec.LinkBundles, c.bundles)
		}
		if !approx(ec.LinksPerToR, c.lp, 0) {
			t.Errorf("tiers=%d LinksPerToR=%v want %v", c.tiers, ec.LinksPerToR, c.lp)
		}
	}
}

// Property: max network size is O((k/2)^n) — Table 2's footnote.
func TestPropertyTable2Growth(t *testing.T) {
	f := func(kRaw, nRaw uint8) bool {
		k := int(kRaw%64)*2 + 4 // even, 4..130
		n := int(nRaw%4) + 1
		p := Params{K: k, T: k / 2, L: 1}
		ec := Table2(p, n)
		want := pow(float64(k), n) / pow(2, n-1)
		return ec.MaxToRs == want && ec.MaxToRs >= pow(float64(k)/2, n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDerivedCountsConsistency(t *testing.T) {
	// Every tier boundary must carry exactly the total ToR uplink count, so
	// bundles = n * ToRs * t.
	for n := 1; n <= 5; n++ {
		p := Params{K: 16, T: 8, L: 2}
		ec := DerivedCounts(p, n)
		wantBundles := float64(n) * ec.MaxToRs * float64(p.T)
		if !approx(ec.LinkBundles, wantBundles, 1e-12) {
			t.Errorf("tiers=%d bundles=%v want %v", n, ec.LinkBundles, wantBundles)
		}
	}
}

func TestFig2aAnchors(t *testing.T) {
	// §2.2: "A link bundle of one enables a 1-Tier network of over ten
	// thousand servers, whereas ... link bundle of eight is limited to an
	// eighth of this number."
	h1 := MaxHosts(Stardust50G, 1)
	if h1 != 40*256 {
		t.Fatalf("Stardust 1-tier hosts = %v, want 10240", h1)
	}
	h8 := MaxHosts(FT400Gx32, 1)
	if h8*8 != h1 {
		t.Fatalf("L=8 1-tier hosts = %v, want 1/8 of %v", h8, h1)
	}
	// "For a 2-Tier network, a link bundle of eight allows connecting only
	// 20K hosts, compared with x64 the number of hosts using a link bundle
	// of one."
	h8t2 := MaxHosts(FT400Gx32, 2)
	if h8t2 != 20480 {
		t.Fatalf("L=8 2-tier hosts = %v, want 20480", h8t2)
	}
	h1t2 := MaxHosts(Stardust50G, 2)
	if h1t2 != 64*h8t2 {
		t.Fatalf("L=1 2-tier hosts = %v, want 64x%v", h1t2, h8t2)
	}
}

func TestUplinkPorts(t *testing.T) {
	// 12.8T device, 4T of host-facing capacity -> 8.8T of uplink.
	if got := UplinkPorts(FT400Gx32); got != 22 {
		t.Fatalf("400G uplinks = %d, want 22", got)
	}
	if got := UplinkPorts(Stardust50G); got != 176 {
		t.Fatalf("50G uplinks = %d, want 176", got)
	}
}

func TestMinTiers(t *testing.T) {
	if got := MinTiers(Stardust50G, 10000, 4); got != 1 {
		t.Fatalf("MinTiers(10k) = %d, want 1", got)
	}
	if got := MinTiers(Stardust50G, 11000, 4); got != 2 {
		t.Fatalf("MinTiers(11k) = %d, want 2", got)
	}
	if got := MinTiers(FT400Gx32, 1e9, 3); got != 4 {
		t.Fatalf("impossible network should return max+1, got %d", got)
	}
}

func TestPlanMonotonicity(t *testing.T) {
	// More hosts never takes fewer devices or links; Stardust (l=1) always
	// needs at most the tiers of bundled devices for the same host count.
	prevDev, prevLinks := 0, 0
	for _, h := range []int{1000, 5000, 20000, 100000, 500000, 1000000} {
		p := Plan(Stardust50G, h)
		if p.Devices < prevDev || p.SerialLinks < prevLinks {
			t.Fatalf("plan not monotone at %d hosts: %+v", h, p)
		}
		prevDev, prevLinks = p.Devices, p.SerialLinks
		pb := Plan(FT400Gx32, h)
		if pb.Tiers < p.Tiers {
			t.Fatalf("bundled device needs fewer tiers (%d) than Stardust (%d) at %d hosts", pb.Tiers, p.Tiers, h)
		}
		if h > 20000 && pb.Devices <= p.Devices {
			t.Fatalf("at %d hosts expected Stardust to use fewer devices: stardust=%d ft=%d", h, p.Devices, pb.Devices)
		}
	}
}

func TestClos1(t *testing.T) {
	c, err := NewClos1(24, 36, 12)
	if err != nil {
		t.Fatal(err)
	}
	if c.FE1Down != 24*36/12 {
		t.Fatalf("FE1Down = %d", c.FE1Down)
	}
	if len(c.Links) != 24*36 {
		t.Fatalf("links = %d", len(c.Links))
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// Every FA must reach every FE.
	for i := 0; i < c.NumFA; i++ {
		seen := make(map[int]bool)
		for _, l := range c.Links {
			if l.A == (NodeID{KindFA, i}) {
				seen[l.B.Index] = true
			}
		}
		if len(seen) != c.NumFE1 {
			t.Fatalf("FA%d reaches %d FEs, want %d", i, len(seen), c.NumFE1)
		}
	}
}

func TestClos1Errors(t *testing.T) {
	if _, err := NewClos1(0, 8, 4); err == nil {
		t.Fatal("expected error for zero FAs")
	}
	if _, err := NewClos1(3, 7, 4); err == nil {
		t.Fatal("expected error for non-divisible links")
	}
}

func TestFig9Clos(t *testing.T) {
	c := Fig9Clos()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.NumFA != 256 || c.FAUplinks != 32 || c.NumFE1 != 128 || c.NumFE2 != 64 {
		t.Fatalf("unexpected Fig9 shape: %+v", c)
	}
	if len(c.Links) != 256*32+128*64 {
		t.Fatalf("links = %d, want %d", len(c.Links), 256*32+128*64)
	}
	// Boundary capacities must match (§6.2 setup).
	if c.NumFA*c.FAUplinks != c.NumFE1*c.FE1Down {
		t.Fatal("tier 0-1 mismatch")
	}
	if c.NumFE1*c.FE1Up != c.NumFE2*c.FE2Down {
		t.Fatal("tier 1-2 mismatch")
	}
	// Every FE1 must reach every FE2 (needed for any-to-any cell spraying).
	for f := 0; f < c.NumFE1; f++ {
		seen := make(map[int]bool)
		for _, l := range c.Links {
			if l.A == (NodeID{KindFE1, f}) && l.B.Kind == KindFE2 {
				seen[l.B.Index] = true
			}
		}
		if len(seen) != c.NumFE2 {
			t.Fatalf("FE1 %d reaches %d spines, want %d", f, len(seen), c.NumFE2)
		}
	}
}

func TestClos2Errors(t *testing.T) {
	if _, err := NewClos2(4, 4, 4, 5, 4, 2); err == nil {
		t.Fatal("expected boundary mismatch error")
	}
	if _, err := NewClos2(4, 4, 4, 4, 0, 2); err == nil {
		t.Fatal("expected spine error")
	}
	if _, err := NewClos2(4, 4, 4, 4, 6, 4); err == nil {
		t.Fatal("expected fe1Up multiple error")
	}
}

func TestFatTreeCounts(t *testing.T) {
	f, err := NewFatTree(12)
	if err != nil {
		t.Fatal(err)
	}
	if f.Hosts != 432 || f.Edges != 72 || f.Aggs != 72 || f.Cores != 36 {
		t.Fatalf("k=12 counts wrong: %+v", f)
	}
	if _, err := NewFatTree(5); err == nil {
		t.Fatal("odd k must fail")
	}
	if _, err := NewFatTree(2); err == nil {
		t.Fatal("k=2 must fail")
	}
}

func TestFatTreeRouteStructure(t *testing.T) {
	f, _ := NewFatTree(8)
	// Same edge.
	r := f.Route(0, 1, 0)
	if len(r) != 2 || r[0].Level != 0 || r[1].Level != 5 {
		t.Fatalf("same-edge route wrong: %v", r)
	}
	// Same pod, different edge: hosts 0 and k/2 (edge 0 and 1, pod 0).
	r = f.Route(0, 4, 1)
	if len(r) != 4 {
		t.Fatalf("intra-pod route wrong: %v", r)
	}
	// Cross pod.
	r = f.Route(0, f.Hosts-1, 3)
	if len(r) != 6 || r[2].Level != 2 || r[3].Level != 3 {
		t.Fatalf("cross-pod route wrong: %v", r)
	}
	if n := f.PathsBetween(0, f.Hosts-1); n != 16 {
		t.Fatalf("cross-pod paths = %d, want 16", n)
	}
	if n := f.PathsBetween(0, 4); n != 4 {
		t.Fatalf("intra-pod paths = %d, want 4", n)
	}
	if n := f.PathsBetween(0, 1); n != 1 {
		t.Fatalf("same-edge paths = %d, want 1", n)
	}
}

// Property: every route is loop-free, starts at src's edge, ends at dst's
// edge, and the up/down structure is valid for all path choices.
func TestPropertyFatTreeRoutes(t *testing.T) {
	f, _ := NewFatTree(8)
	check := func(srcRaw, dstRaw, choiceRaw uint16) bool {
		src := int(srcRaw) % f.Hosts
		dst := int(dstRaw) % f.Hosts
		if src == dst {
			return f.Route(src, dst, 0) == nil
		}
		choice := int(choiceRaw) % f.PathsBetween(src, dst)
		r := f.Route(src, dst, choice)
		if len(r) == 0 {
			return false
		}
		if r[0].Level != 0 || r[0].From != src || r[0].To != f.HostEdge(src) {
			return false
		}
		last := r[len(r)-1]
		if last.Level != 5 || last.To != dst || last.From != f.HostEdge(dst) {
			return false
		}
		// Hops must chain: each hop's To is the next hop's From when levels
		// connect the same device class.
		for i := 1; i < len(r); i++ {
			if r[i].From != r[i-1].To {
				return false
			}
		}
		// Core choice must map to an agg of the same position on both
		// sides (fat-tree wiring invariant).
		if len(r) == 6 {
			up, down := r[1].To, r[4].From
			if up%(f.K/2) != down%(f.K/2) {
				return false
			}
			core := r[2].To
			if core/(f.K/2) != up%(f.K/2) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: distinct choices produce distinct paths for cross-pod pairs.
func TestPropertyFatTreePathDiversity(t *testing.T) {
	f, _ := NewFatTree(8)
	src, dst := 0, f.Hosts-1
	n := f.PathsBetween(src, dst)
	seen := make(map[[2]int]bool)
	for c := 0; c < n; c++ {
		r := f.Route(src, dst, c)
		key := [2]int{r[1].To, r[2].To} // (upAgg, core) identifies the path
		if seen[key] {
			t.Fatalf("choice %d repeats path %v", c, key)
		}
		seen[key] = true
	}
	if len(seen) != n {
		t.Fatalf("only %d distinct paths of %d", len(seen), n)
	}
}
