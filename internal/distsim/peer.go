// The peer runtime: dial the coordinator, build the replica, replay the
// resume checkpoint if restoring, then execute owned shards window by
// window — decode inbound mail, StepOwned, encode outbound mail, DONE.
package distsim

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"time"

	"stardust/internal/fabric"
	"stardust/internal/parsim"
)

// EnvJoin, when set in a process's environment, makes MaybeRunPeer take
// over the process as a peer joining the coordinator at that address —
// the re-exec seam the devnet harness forks real peer processes through.
const EnvJoin = "STARDUST_PEER_JOIN"

// peerIOTimeout must outlast a coordinator-side rejoin wait: while a dead
// peer is being restored, every healthy peer is parked in a read.
const peerIOTimeout = 180 * time.Second

// MaybeRunPeer turns the current process into a peer when EnvJoin is set,
// and never returns in that case. Call it first thing in main() (the cmd
// binaries do, via engine.Main) and in TestMain of any test that forks
// peers via devnet — the forked child re-executes the same binary and
// must branch into the peer loop before anything else runs.
func MaybeRunPeer() {
	addr := os.Getenv(EnvJoin)
	if addr == "" {
		return
	}
	if err := RunPeer(addr); err != nil {
		fmt.Fprintf(os.Stderr, "stardust peer: %v\n", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// RunPeer joins the coordinator at addr and serves one simulation. The
// coordinator may not be listening yet (peers and coordinator start
// concurrently), so the dial retries briefly.
func RunPeer(addr string) error {
	conn, err := dialRetry(addr, 30*time.Second)
	if err != nil {
		return err
	}
	defer conn.Close()
	return runPeerConn(conn, -1)
}

func dialRetry(addr string, timeout time.Duration) (net.Conn, error) {
	deadline := time.Now().Add(timeout)
	for {
		conn, err := net.Dial("tcp", addr)
		if err == nil {
			return conn, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("distsim: dialing coordinator %s: %w", addr, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// runPeerConn speaks the peer side of the protocol on an established
// connection. dieAtWindow is a test seam: when >= 0 the peer drops the
// connection on reaching that window, simulating a crash mid-run for the
// checkpoint/restore tests (it cannot SIGKILL a goroutine).
func runPeerConn(conn net.Conn, dieAtWindow int) error {
	pc := newPeerConn(conn, peerIOTimeout, nil)
	hb, err := json.Marshal(helloMsg{Version: protoVersion})
	if err != nil {
		return err
	}
	if err := pc.write(tHello, hb, false); err != nil {
		return err
	}
	typ, body, err := pc.read()
	if err != nil {
		return fmt.Errorf("distsim: reading welcome: %w", err)
	}
	if typ == tError {
		return fmt.Errorf("distsim: coordinator rejected join: %s", body)
	}
	if typ != tWelcome {
		return fmt.Errorf("distsim: expected WELCOME, got frame %d", typ)
	}
	var wm welcomeMsg
	if err := json.Unmarshal(body, &wm); err != nil {
		return fmt.Errorf("distsim: bad WELCOME: %w", err)
	}
	m, err := NewModel(wm.Spec)
	if err != nil {
		pc.write(tError, []byte(err.Error()), false)
		return err
	}
	if len(wm.Owners) != wm.Spec.Shards {
		return fmt.Errorf("distsim: partition map names %d shards, spec has %d", len(wm.Owners), wm.Spec.Shards)
	}
	owned := make([]bool, wm.Spec.Shards)
	for s, o := range wm.Owners {
		owned[s] = o == wm.PeerID
	}

	// Telemetry: at each scrape boundary this peer ships the absolute
	// counters of the entities it owns (disjoint across peers, complete
	// in union). The owned sets are static, computed once.
	telem := wm.Spec.telemEvery(m.Eng.Lookahead())
	var ownedDirs, ownedFAs []int
	if telem > 0 {
		for d := 0; d < 2*m.Net.NumLinks(); d++ {
			if owned[m.Net.OwnerOfLinkDir(d)] {
				ownedDirs = append(ownedDirs, d)
			}
		}
		for fa := range m.Sinks {
			if owned[m.Net.ShardOfFA(fa)] {
				ownedFAs = append(ownedFAs, fa)
			}
		}
	}

	// Restore by replay: the checkpoint is the inbound mail history, and
	// the replica is deterministic, so re-executing windows [0, Resume)
	// reproduces the dead peer's barrier state exactly. Outbound mail is
	// discarded — the living peers received it the first time — but still
	// pushed through the codec so pooled packets are released.
	discard := func(src, dst int, mail parsim.Mail) { m.Net.EncodeMail(mail) }
	for w := 0; w < wm.Resume; w++ {
		if err := deliverBatch(m, wm.Mail[w]); err != nil {
			pc.write(tError, []byte(err.Error()), false)
			return err
		}
		m.Eng.StepOwned(owned, discard)
	}

	rb, err := json.Marshal(readyMsg{Hash: modelHash(wm.Spec, wm.Owners, m)})
	if err != nil {
		return err
	}
	if err := pc.write(tReady, rb, false); err != nil {
		return err
	}

	var encodeErr error
	outBuf := []byte{}
	outCount := 0
	emit := func(src, dst int, mail parsim.Mail) {
		kind, pay, err := m.Net.EncodeMail(mail)
		if err != nil {
			if encodeErr == nil {
				encodeErr = err
			}
			return
		}
		outBuf = appendEntry(outBuf, mailEntry{
			dst:  dst,
			at:   mail.At,
			lane: mail.Lane,
			kind: kind,
			arg:  mail.Arg,
			pay:  pay,
		})
		outCount++
	}
	for {
		typ, body, err := pc.read()
		if err != nil {
			return fmt.Errorf("distsim: coordinator connection lost: %w", err)
		}
		switch typ {
		case tGo:
			w, k := binary.Uvarint(body)
			if k <= 0 {
				return fmt.Errorf("distsim: truncated GO")
			}
			if dieAtWindow >= 0 && int(w) >= dieAtWindow {
				conn.Close()
				return fmt.Errorf("distsim: induced peer death at window %d", w)
			}
			if err := deliverBatch(m, body[k:]); err != nil {
				pc.write(tError, []byte(err.Error()), false)
				return err
			}
			outBuf, outCount, encodeErr = outBuf[:0], 0, nil
			end := m.Eng.StepOwned(owned, emit)
			if encodeErr != nil {
				pc.write(tError, []byte(encodeErr.Error()), false)
				return encodeErr
			}
			done := binary.AppendUvarint(nil, w)
			done = binary.AppendUvarint(done, uint64(m.Eng.OwnedPending(owned)))
			done = binary.AppendUvarint(done, uint64(outCount))
			done = append(done, outBuf...)
			if telem > 0 {
				done = appendTelemSection(done, m, ownedDirs, ownedFAs, end, m.Eng.Lookahead(), telem)
			}
			if err := pc.write(tDone, done, true); err != nil {
				return err
			}
		case tFinish:
			rep, err := json.Marshal(buildReport(m, owned))
			if err != nil {
				return err
			}
			return pc.write(tReport, rep, true)
		case tError:
			return fmt.Errorf("distsim: coordinator error: %s", body)
		default:
			return fmt.Errorf("distsim: unexpected frame %d", typ)
		}
	}
}

// deliverBatch decodes one window's inbound mail batch against this
// replica and injects it in barrier context. Entries arrive in per-source
// send order; the (time, lane) key makes cross-source order irrelevant,
// exactly as for an in-process mailbox flush.
func deliverBatch(m *Model, batch []byte) error {
	count, rest, err := batchCount(batch)
	if err != nil {
		return err
	}
	for i := 0; i < count; i++ {
		var e mailEntry
		e, rest, err = readEntry(rest)
		if err != nil {
			return err
		}
		act, _, err := m.Net.DecodeMail(e.kind, e.lane, e.pay)
		if err != nil {
			return err
		}
		m.Eng.DeliverMail(e.dst, parsim.Mail{At: e.at, Lane: e.lane, Act: act, Arg: e.arg})
	}
	return nil
}

// buildReport snapshots everything this peer owns of the final state:
// its shards' traffic counters and event counts, the delivery sinks of
// its FAs, the forwarding counters of the link directions whose queues
// live on its shards, and its spines' unreachable-FA counts.
func buildReport(m *Model, owned []bool) peerReport {
	var rep peerReport
	for s, own := range owned {
		if !own {
			continue
		}
		tr := m.Net.TrafficOfShard(s)
		rep.Shards = append(rep.Shards, shardReport{
			ID:           s,
			Injected:     tr.Injected,
			Delivered:    tr.Delivered,
			DeadDrops:    tr.DeadDrops,
			NoRouteDrops: tr.NoRouteDrops,
			Processed:    m.Eng.Shard(s).Sim().Processed,
		})
	}
	for fa, sink := range m.Sinks {
		if owned[m.Net.ShardOfFA(fa)] {
			rep.Sinks = append(rep.Sinks, sinkReport{FA: fa, Cells: sink.Cells, Bytes: sink.Bytes})
		}
	}
	for d := 0; d < 2*m.Net.NumLinks(); d++ {
		if owned[m.Net.OwnerOfLinkDir(d)] {
			b, cl, dr := m.Net.DirCounters(d)
			rep.Dirs = append(rep.Dirs, dirReport{Dir: d, FwdBytes: b, FwdCells: cl, Drops: dr})
		}
	}
	// Spine reachability tables are the one report that lives on specific
	// shards: only the Clos fabric has them. Graph fabrics reconverge via
	// barrier controls, so their reachability is control-replicated and
	// the coordinator's own replica reports it (see coord.finish).
	if cn, ok := m.Net.(*fabric.Net); ok {
		for i := 0; i < cn.Topo.NumFE2; i++ {
			if owned[cn.ShardOfFE2(i)] {
				rep.Spines = append(rep.Spines, spineReport{Spine: i, Unreachable: cn.SpineUnreachable(i)})
			}
		}
	}
	return rep
}
