package mgmt

import (
	"testing"

	"stardust/internal/fabric"
	"stardust/internal/sim"
)

func TestInventoryFromClos(t *testing.T) {
	cl, err := fabric.ClosFor(4)
	if err != nil {
		t.Fatal(err)
	}
	inv := NewInventory(cl)
	wantDevs := cl.NumFA + cl.NumFE1 + cl.NumFE2
	if len(inv.Devices) != wantDevs {
		t.Fatalf("inventory has %d devices, want %d", len(inv.Devices), wantDevs)
	}
	if len(inv.Links) != len(cl.Links) {
		t.Fatalf("inventory has %d links, want %d", len(inv.Links), len(cl.Links))
	}
	seen := make(map[string]bool)
	for _, d := range inv.Devices {
		if seen[d.ID] {
			t.Fatalf("duplicate device ID %q", d.ID)
		}
		seen[d.ID] = true
		if d.Ports <= 0 {
			t.Fatalf("device %s has no ports", d.ID)
		}
	}
	for _, lk := range inv.Links {
		if !seen[lk.A] || !seen[lk.B] {
			t.Fatalf("link %d references unknown device (%s, %s)", lk.ID, lk.A, lk.B)
		}
	}
}

func TestBusPublishSinceSubscribe(t *testing.T) {
	b := NewBus(4)
	ch, cancel := b.Subscribe(8)
	defer cancel()
	for i := 0; i < 6; i++ {
		b.Publish(Event{Kind: EventLinkDown, Link: i, Time: sim.Time(i)})
	}
	// Ring capacity 4: seqs 3..6 retained, 1..2 evicted.
	all := b.Since(0, 0)
	if len(all) != 4 || all[0].Seq != 3 || all[3].Seq != 6 {
		t.Fatalf("retained %v", all)
	}
	since := b.Since(4, 0)
	if len(since) != 2 || since[0].Seq != 5 {
		t.Fatalf("since(4) = %v", since)
	}
	if got := b.Since(4, 1); len(got) != 1 || got[0].Seq != 5 {
		t.Fatalf("since(4, max 1) = %v", got)
	}
	if b.LastSeq() != 6 {
		t.Fatalf("LastSeq = %d", b.LastSeq())
	}
	// The subscriber saw every publish in order.
	for want := uint64(1); want <= 6; want++ {
		e := <-ch
		if e.Seq != want {
			t.Fatalf("subscriber got seq %d, want %d", e.Seq, want)
		}
	}
}

func TestBusSlowSubscriberDropsNotBlocks(t *testing.T) {
	b := NewBus(16)
	_, cancel := b.Subscribe(1)
	defer cancel()
	for i := 0; i < 5; i++ {
		b.Publish(Event{Kind: EventLinkUp}) // must not block
	}
	if b.Dropped != 4 {
		t.Fatalf("dropped %d events, want 4", b.Dropped)
	}
}

func TestBusCancelIsIdempotent(t *testing.T) {
	b := NewBus(4)
	_, cancel := b.Subscribe(1)
	cancel()
	cancel() // second close must not panic
	b.Publish(Event{Kind: EventLinkUp})
}

func TestSeriesRingWrap(t *testing.T) {
	s := newSeries(4)
	if _, ok := s.Last(); ok {
		t.Fatal("empty series has a Last")
	}
	for i := 1; i <= 10; i++ {
		s.Push(Sample{T: sim.Time(i), FwdBytes: uint64(i)})
	}
	if s.Len() != 4 {
		t.Fatalf("len %d, want 4", s.Len())
	}
	snap := s.Snapshot()
	for i, x := range snap {
		if want := sim.Time(7 + i); x.T != want {
			t.Fatalf("snapshot[%d].T = %v, want %v", i, x.T, want)
		}
	}
	last, _ := s.Last()
	prev, _ := s.Prev()
	if last.T != 10 || prev.T != 9 {
		t.Fatalf("last/prev = %v/%v", last.T, prev.T)
	}
}

func TestCacheKeyCanonical(t *testing.T) {
	a := RunRequest{Scenario: "x", Params: map[string]string{"a": "1", "b": "2"}}
	b := RunRequest{Scenario: "x", Params: map[string]string{"b": "2", "a": "1"}, Seed: 1}
	if a.CacheKey() != b.CacheKey() {
		t.Fatal("param order / default seed must not change the cache key")
	}
	c := RunRequest{Scenario: "x", Params: map[string]string{"a": "1", "b": "2"}, Seed: 2}
	if a.CacheKey() == c.CacheKey() {
		t.Fatal("seed must be part of the cache key")
	}
	d := RunRequest{Scenario: "y", Params: map[string]string{"a": "1", "b": "2"}}
	if a.CacheKey() == d.CacheKey() {
		t.Fatal("scenario must be part of the cache key")
	}
	// The separator must prevent concatenation collisions.
	e := RunRequest{Scenario: "x", Params: map[string]string{"a": "1b=2"}}
	f := RunRequest{Scenario: "x", Params: map[string]string{"a": "1", "b": "2"}}
	if e.CacheKey() == f.CacheKey() {
		t.Fatal("cache key collides across different param maps")
	}
}
