// Package scenarios registers every experiment of the paper's evaluation
// with the scenario engine. Importing this package (usually for side
// effects from a cmd binary) populates the engine registry:
//
//	htsim/permutation  htsim/fct  htsim/incast      (§6.3, Fig 10a-c)
//	htsim/hotspot  htsim/alltoall                   (traffic-matrix sweeps)
//	fabric/fig9  fabric/pushpull  fabric/recovery   (§6.2 Fig 9, Fig 7/12, App E)
//	fabric/linkload  fabric/failures                (§5.3 balance, §5.9 healing)
//	fabric/parscale  fabric/parheal                 (sharded parallel engine)
//	trace/record  trace/replay                     (telemetry stream + digital twin)
//	system/arista                                   (§6.1.2)
//	pack/fig8a  pack/fig8b                          (§6.1.1, Fig 8)
//	scaling/fig2  scaling/table2  scaling/fig3
//	scaling/fig10d  scaling/fig11  scaling/appendixE
//
// The computation lives in internal/experiments and friends; this package
// only declares parameters, sweep expansion and result shaping.
package scenarios

import (
	"strings"

	"stardust/internal/sim"
)

// msTime converts an integer millisecond parameter to sim.Time.
func msTime(n int) sim.Time { return sim.Time(n) * sim.Millisecond }

// usTime converts an integer microsecond parameter to sim.Time.
func usTime(n int) sim.Time { return sim.Time(n) * sim.Microsecond }

// splitList splits a comma-separated parameter, trimming blanks.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
