package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"sort"

	"stardust/internal/fabric"
	"stardust/internal/netsim"
	"stardust/internal/parsim"
	"stardust/internal/sim"
	"stardust/internal/stats"
	"stardust/internal/tcp"
	"stardust/internal/workload"
)

// Protocol selects a transport for the §6.3 comparison.
type Protocol string

// The §6.3 contenders.
const (
	ProtoDCTCP    Protocol = "DCTCP"
	ProtoDCQCN    Protocol = "DCQCN"
	ProtoMPTCP    Protocol = "MPTCP"
	ProtoStardust Protocol = "Stardust"
)

// Protocols lists the Fig 10 contenders in the paper's legend order.
var Protocols = []Protocol{ProtoMPTCP, ProtoDCTCP, ProtoDCQCN, ProtoStardust}

// HtsimConfig sizes a §6.3 experiment. The paper uses K=12 (432 hosts);
// tests and quick benchmarks use smaller trees.
type HtsimConfig struct {
	K            int
	Duration     sim.Time // measurement window (after warmup)
	Warmup       sim.Time
	MSS          int // 9000 for the TCP variants (§6.3)
	Subflows     int // MPTCP subflows (8, following [72])
	ECNThreshPkt int
	// StardustCredit overrides the credit quantum of the Stardust
	// substrate (0 = the paper's 4KB) — the §4.1 ablation knob.
	StardustCredit int64
	// StardustSpeedup overrides the credit speed-up ratio (0 = the
	// paper's 1.03) — the §6.2 ablation knob.
	StardustSpeedup float64
	// FullFabric replaces the fluid trunk model of the Stardust substrate
	// with the topology-faithful per-link fabric (internal/fabric): every
	// FE device and serial link simulated, cells sprayed per link.
	FullFabric bool
	// Shards, when >= 1 together with FullFabric, runs the Stardust
	// substrate sharded: fabric devices, VOQs, credit schedulers and TCP
	// endpoints partitioned across that many parsim event loops, with
	// byte-identical results at any shard count for the same seed. 0 keeps
	// the classic single event loop. Only the Stardust protocol shards;
	// the fat-tree contenders always run solo.
	Shards int
	Seed   int64
}

// DefaultHtsim returns the paper-scale configuration.
func DefaultHtsim() HtsimConfig {
	return HtsimConfig{
		K:            12,
		Duration:     50 * sim.Millisecond,
		Warmup:       10 * sim.Millisecond,
		MSS:          9000,
		Subflows:     8,
		ECNThreshPkt: 20,
		Seed:         1,
	}
}

// QuickHtsim returns a small configuration for tests and benchmarks.
func QuickHtsim() HtsimConfig {
	c := DefaultHtsim()
	c.K = 4
	c.Duration = 20 * sim.Millisecond
	c.Warmup = 5 * sim.Millisecond
	return c
}

// testbed wires either the fat-tree (for the TCP variants) or the Stardust
// substrate — solo or sharded — and hands out per-flow route builders.
type testbed struct {
	cfg   HtsimConfig
	s     *sim.Simulator
	ft    *netsim.FatTreeNet
	sd    *netsim.StardustNet        // solo Stardust substrate
	ssd   *netsim.ShardedStardustNet // sharded Stardust substrate (FullFabric && Shards >= 1)
	eng   *parsim.Engine             // non-nil iff ssd is
	fab   *fabric.Net                // non-nil when cfg.FullFabric selected the per-link fabric
	hosts int
	rng   *rand.Rand
}

func newTestbed(cfg HtsimConfig, proto Protocol) (*testbed, error) {
	tb := &testbed{cfg: cfg, s: sim.New(), rng: rand.New(rand.NewSource(cfg.Seed))}
	switch proto {
	case ProtoStardust:
		hostsPer := cfg.K / 2 // hosts per edge device in a k-ary fat-tree
		ftc := netsim.DefaultFatTree()
		ftc.K = cfg.K
		sdc := netsim.DefaultStardust(ftc.LinkRate, hostsPer, ftc.LinkDelay)
		if cfg.StardustCredit > 0 {
			sdc.CreditBytes = cfg.StardustCredit
		}
		if cfg.StardustSpeedup > 0 {
			sdc.SpeedUp = cfg.StardustSpeedup
		}
		hosts := cfg.K * cfg.K * cfg.K / 4
		if cfg.FullFabric && cfg.Shards >= 1 {
			// Sharded end-to-end run: the engine's lookahead is the link
			// delay (the fabric's synchronization horizon) and the whole
			// transport is partitioned by edge FA.
			cl, err := fabric.ClosFor(cfg.K)
			if err != nil {
				return nil, err
			}
			eng := parsim.New(parsim.Config{Shards: cfg.Shards, Lookahead: ftc.LinkDelay})
			fcfg := fabric.DefaultConfig(netsim.Bps(float64(ftc.LinkRate)*1.05), ftc.LinkDelay, cfg.Seed)
			fn, err := fabric.NewSharded(eng, fcfg, cl, nil)
			if err != nil {
				return nil, err
			}
			ssd, err := netsim.NewShardedStardustNet(fn, sdc, hosts, hostsPer)
			if err != nil {
				return nil, err
			}
			tb.eng, tb.ssd, tb.fab = eng, ssd, fn
			tb.s = eng.Shard(0).Sim()
			tb.hosts = hosts
			return tb, nil
		}
		sd, err := netsim.NewStardustNet(tb.s, sdc, hosts, hostsPer)
		if err != nil {
			return nil, err
		}
		if cfg.FullFabric {
			cl, err := fabric.ClosFor(cfg.K)
			if err != nil {
				return nil, err
			}
			fcfg := fabric.DefaultConfig(netsim.Bps(float64(ftc.LinkRate)*1.05), ftc.LinkDelay, cfg.Seed)
			fn, err := fabric.New(tb.s, fcfg, cl)
			if err != nil {
				return nil, err
			}
			fn.OnDeliver = sd.DeliverCell
			sd.UseFabric(fn)
			tb.fab = fn
		}
		tb.sd = sd
		tb.hosts = hosts
	default:
		ftc := netsim.DefaultFatTree()
		ftc.K = cfg.K
		ftc.MTU = cfg.MSS
		if proto == ProtoDCTCP || proto == ProtoDCQCN {
			ftc.ECNThreshPkt = cfg.ECNThreshPkt
		}
		ft, err := netsim.NewFatTreeNet(tb.s, ftc)
		if err != nil {
			return nil, err
		}
		tb.ft = ft
		tb.hosts = ft.Topo.Hosts
	}
	return tb, nil
}

// linkRate returns the edge link rate of the testbed.
func (tb *testbed) linkRate() float64 {
	if tb.ft != nil {
		return float64(tb.ft.Cfg.LinkRate)
	}
	if tb.ssd != nil {
		return float64(tb.ssd.Cfg.HostRate)
	}
	return float64(tb.sd.Cfg.HostRate)
}

// sim returns the event heap host h's endpoints must run on: the shard
// the host is pinned to in a sharded run, the single loop otherwise.
func (tb *testbed) sim(h int) *sim.Simulator {
	if tb.ssd != nil {
		return tb.ssd.HostSim(h)
	}
	return tb.s
}

// now returns the synchronized simulation time.
func (tb *testbed) now() sim.Time {
	if tb.eng != nil {
		return tb.eng.Now()
	}
	return tb.s.Now()
}

// runUntil advances the simulation to t. A sharded run returns at the
// window boundary at or after t with every shard quiescent, so counters
// and endpoint state are safe to read afterward.
func (tb *testbed) runUntil(t sim.Time) {
	if tb.eng != nil {
		tb.eng.Run(t)
		return
	}
	tb.s.RunUntil(t)
}

// routes returns a forward route (without the endpoint) for one path
// choice of the flow.
func (tb *testbed) route(src, dst, choice int) []netsim.Handler {
	if tb.ssd != nil {
		return tb.ssd.Route(src, dst)
	}
	if tb.sd != nil {
		return tb.sd.Route(src, dst)
	}
	return tb.ft.Route(src, dst, choice%tb.ft.Paths(src, dst))
}

// flowRunner abstracts the per-protocol flow construction.
type flowRunner struct {
	deliveredAt func() int64 // bytes acked so far
	fct         func() (sim.Time, bool)
}

// launchFlow starts one flow of flowBytes (0 = long-running) between src
// and dst and returns accessors for measurement. onDone is optional.
func (tb *testbed) launchFlow(proto Protocol, src, dst int, flowBytes int64, at sim.Time, onDone func(sim.Time)) flowRunner {
	cfg := tcp.DefaultConfig()
	cfg.MSS = tb.cfg.MSS
	switch proto {
	case ProtoDCTCP, ProtoStardust:
		// Stardust runs unmodified NewReno on top (§6.3); the substrate
		// chops packets into 512B cells itself. In a sharded run the
		// source lives on its host's shard and the sink on the
		// destination's — the routes already cross between them.
		cfg.DCTCP = proto == ProtoDCTCP
		choice := tb.rng.Int()
		f := tcp.NewSource(tb.sim(src), cfg, fmt.Sprintf("%s-%d-%d", proto, src, dst), flowBytes, nil)
		sink := tcp.NewSink(tb.sim(dst), cfg, f, append(tb.route(dst, src, choice), tcp.Ack))
		f.SetRoute(append(tb.route(src, dst, choice), sink))
		if onDone != nil {
			f.OnComplete = func(s *tcp.Source) { onDone(s.FCT()) }
		}
		f.StartAt(at)
		return flowRunner{
			deliveredAt: func() int64 { return f.DeliveredB },
			fct:         func() (sim.Time, bool) { return f.FCT(), f.Done },
		}
	case ProtoDCQCN:
		choice := tb.rng.Int()
		rate := netsim.Bps(10e9)
		if tb.ft != nil {
			rate = tb.ft.Cfg.LinkRate
		}
		d := tcp.NewDCQCN(tb.s, fmt.Sprintf("dcqcn-%d-%d", src, dst), cfg.MSS, rate, flowBytes, nil)
		sink := tcp.NewDCQCNSink(tb.s, d, append(tb.route(dst, src, choice), tcp.DCQCNAck))
		d.SetRoute(append(tb.route(src, dst, choice), sink))
		if onDone != nil {
			d.OnComplete = func(x *tcp.DCQCN) { onDone(x.FCT()) }
		}
		d.StartAt(at)
		return flowRunner{
			deliveredAt: func() int64 { return d.DeliveredB },
			fct:         func() (sim.Time, bool) { return d.FCT(), d.Done },
		}
	case ProtoMPTCP:
		n := tb.cfg.Subflows
		m := tcp.NewMPTCP(tb.s, cfg, fmt.Sprintf("mptcp-%d-%d", src, dst), flowBytes, make([][]netsim.Handler, n))
		for i := 0; i < n; i++ {
			choice := tb.rng.Int()
			sub := m.Subflows[i]
			sink := tcp.NewSink(tb.s, cfg, sub, append(tb.route(dst, src, choice), tcp.Ack))
			sub.SetRoute(append(tb.route(src, dst, choice), sink))
		}
		if onDone != nil {
			m.OnComplete = func(x *tcp.MPTCP) { onDone(x.FCT()) }
		}
		m.StartAt(at)
		return flowRunner{
			deliveredAt: func() int64 { return m.DeliveredB() },
			fct:         func() (sim.Time, bool) { return m.FCT(), m.Done },
		}
	}
	panic("experiments: unknown protocol " + string(proto))
}

// PermutationResult is one Fig 10(a) series: per-flow goodput sorted
// ascending, plus the mean utilization and — for the Stardust substrate —
// the transport counters the sharded determinism digest is built from.
type PermutationResult struct {
	Proto       Protocol
	Gbps        []float64 // sorted per-flow goodput
	Delivered   []int64   // per-source-host acked-byte deltas over the window
	MeanUtilPct float64
	FabricDrops uint64

	// Stardust-substrate transport counters at the end of the run.
	CellsSent     uint64
	CreditsSent   uint64
	VOQDrops      uint64
	ReasmTimeouts uint64
}

// Permutation runs the Fig 10(a) experiment for one protocol: every host
// sends to one other host and receives from exactly one, continuously,
// fully loading the data center.
func Permutation(cfg HtsimConfig, proto Protocol) (*PermutationResult, error) {
	tb, err := newTestbed(cfg, proto)
	if err != nil {
		return nil, err
	}
	perm := workload.Permutation(tb.rng, tb.hosts)
	runners := make([]flowRunner, tb.hosts)
	for src := 0; src < tb.hosts; src++ {
		runners[src] = tb.launchFlow(proto, src, perm[src], 0, 0, nil)
	}
	tb.runUntil(cfg.Warmup)
	base := make([]int64, tb.hosts)
	for i, r := range runners {
		base[i] = r.deliveredAt()
	}
	tb.runUntil(cfg.Warmup + cfg.Duration)

	linkRate := tb.linkRate()
	res := &PermutationResult{Proto: proto}
	var sum float64
	for i, r := range runners {
		delta := r.deliveredAt() - base[i]
		res.Delivered = append(res.Delivered, delta)
		gbps := float64(delta) * 8 / cfg.Duration.Seconds() / 1e9
		res.Gbps = append(res.Gbps, gbps)
		sum += gbps
	}
	sort.Float64s(res.Gbps)
	res.MeanUtilPct = 100 * sum / (float64(tb.hosts) * linkRate / 1e9)
	switch {
	case tb.ft != nil:
		res.FabricDrops = tb.ft.TotalDrops()
	case tb.ssd != nil:
		res.FabricDrops = tb.ssd.FabricDrops()
		var tc netsim.TransportCounters
		tb.ssd.ReadCounters(&tc)
		res.CellsSent = tc.CellsSent
		res.CreditsSent = tc.CreditsSent
		res.VOQDrops = tc.VOQDrops
		res.ReasmTimeouts = tc.ReasmTimeouts
	default:
		res.FabricDrops = tb.sd.FabricDrops()
		res.CellsSent = tb.sd.CellsSent
		res.CreditsSent = tb.sd.CreditsSent
		res.VOQDrops = tb.sd.VOQDrops
		res.ReasmTimeouts = tb.sd.ReasmTimeouts
	}
	return res, nil
}

// FCTResult is one Fig 10(b) series: the distribution of flow completion
// times for Web-workload flows under background load.
type FCTResult struct {
	Proto Protocol
	Ms    *stats.Sample // FCTs in milliseconds
}

// FCT runs the Fig 10(b) experiment: all nodes source background
// long-running flows to random destinations; a measured pair exchanges
// Web-workload flows back to back and we record their completion times.
func FCT(cfg HtsimConfig, proto Protocol, measuredFlows int) (*FCTResult, error) {
	tb, err := newTestbed(cfg, proto)
	if err != nil {
		return nil, err
	}
	// Measured pair: hosts 0 and hosts-1 (different pods for any K).
	src, dst := 0, tb.hosts-1
	// Background: "all other nodes source four long-running connections to
	// a random destination" (§6.3) — the measured pair stays clean so the
	// experiment isolates queueing *within the network*.
	for bg := 0; bg < tb.hosts; bg++ {
		if bg == src || bg == dst {
			continue
		}
		for j := 0; j < 4; j++ {
			d := tb.rng.Intn(tb.hosts)
			if d == bg || d == src || d == dst {
				d = (d + 1) % tb.hosts
				if d == bg || d == src || d == dst {
					d = (d + 1) % tb.hosts
					if d == bg || d == src || d == dst {
						d = (d + 1) % tb.hosts
					}
				}
			}
			tb.launchFlow(proto, bg, d, 0, 0, nil)
		}
	}
	sizes := workload.WebFlowSizes()
	res := &FCTResult{Proto: proto, Ms: &stats.Sample{}}
	deadline := cfg.Warmup + 40*cfg.Duration
	remaining := measuredFlows

	if tb.eng != nil {
		// Sharded run: flow creation mutates multi-shard state (routes,
		// VOQs), so each measured flow is launched in barrier context and
		// its completion is detected by polling at the window barrier —
		// barrier instants are lookahead-quantized, hence identical at
		// every shard count.
		var active *flowRunner
		var launch func()
		launch = func() {
			if remaining == 0 {
				return
			}
			remaining--
			size := int64(sizes.Sample(tb.rng))
			if size < int64(cfg.MSS) {
				size = int64(cfg.MSS)
			}
			r := tb.launchFlow(proto, src, dst, size, tb.now(), nil)
			active = &r
		}
		tb.eng.At(cfg.Warmup, launch)
		tb.eng.OnBarrier(func(now sim.Time) {
			if active == nil {
				return
			}
			if fct, done := active.fct(); done {
				res.Ms.Add(fct.Seconds() * 1e3)
				active = nil
				if remaining > 0 {
					tb.eng.At(now+10*sim.Microsecond, launch)
				}
			}
		})
		for tb.now() < deadline && res.Ms.N() < measuredFlows {
			tb.runUntil(tb.now() + cfg.Duration)
		}
		return res, nil
	}

	var launch func()
	launch = func() {
		if remaining == 0 {
			return
		}
		remaining--
		size := int64(sizes.Sample(tb.rng))
		if size < int64(cfg.MSS) {
			size = int64(cfg.MSS)
		}
		tb.launchFlow(proto, src, dst, size, tb.s.Now(), func(fct sim.Time) {
			res.Ms.Add(fct.Seconds() * 1e3)
			tb.s.After(10*sim.Microsecond, launch)
		})
	}
	tb.s.At(cfg.Warmup, launch)
	// Run until the measured flows finish or the budget is spent.
	for tb.s.Now() < deadline && res.Ms.N() < measuredFlows {
		tb.s.RunUntil(tb.s.Now() + cfg.Duration)
	}
	return res, nil
}

// IncastResult is one Fig 10(c) point.
type IncastResult struct {
	Proto    Protocol
	Backends int
	FirstMs  float64
	LastMs   float64
}

// Incast runs one Fig 10(c) point: backends servers each send
// responseBytes to a frontend simultaneously; first and last completion
// measure performance and fairness.
func Incast(cfg HtsimConfig, proto Protocol, backends int, responseBytes int64) (*IncastResult, error) {
	tb, err := newTestbed(cfg, proto)
	if err != nil {
		return nil, err
	}
	if backends >= tb.hosts {
		backends = tb.hosts - 1
	}
	inc := workload.NewIncast(tb.rng, tb.hosts, backends, responseBytes)
	// Completion is read off each runner at quiescent points rather than
	// through callbacks, so the same loop drives solo and sharded runs
	// (a sharded completion callback would fire on a shard goroutine).
	runners := make([]flowRunner, len(inc.Backends))
	for i, b := range inc.Backends {
		runners[i] = tb.launchFlow(proto, b, inc.Frontend, responseBytes, 0, nil)
	}
	collect := func() []sim.Time {
		var out []sim.Time
		for _, r := range runners {
			if fct, done := r.fct(); done {
				out = append(out, fct)
			}
		}
		return out
	}
	// Budget generously: N*450KB over 10G plus slow start.
	budget := sim.Time(float64(backends)*float64(responseBytes)*8/10e9*float64(sim.Second))*4 + 100*sim.Millisecond
	deadline := budget
	var fcts []sim.Time
	for tb.now() < deadline && len(fcts) < backends {
		tb.runUntil(tb.now() + 10*sim.Millisecond)
		fcts = collect()
	}
	if len(fcts) == 0 {
		return nil, fmt.Errorf("experiments: no incast flow completed (proto %s, N=%d)", proto, backends)
	}
	res := &IncastResult{Proto: proto, Backends: len(fcts)}
	first, last := fcts[0], fcts[0]
	for _, f := range fcts {
		if f < first {
			first = f
		}
		if f > last {
			last = f
		}
	}
	res.FirstMs = first.Seconds() * 1e3
	res.LastMs = last.Seconds() * 1e3
	if len(fcts) < backends {
		return res, fmt.Errorf("experiments: only %d of %d incast flows completed", len(fcts), backends)
	}
	return res, nil
}

// WritePermutation prints a Fig 10(a) summary row.
func WritePermutation(w io.Writer, r *PermutationResult) {
	n := len(r.Gbps)
	p5, p50 := 0.0, 0.0
	if n > 0 {
		p5, p50 = r.Gbps[n/20], r.Gbps[n/2]
	}
	fmt.Fprintf(w, "%-9s mean-util=%5.1f%%  p5=%5.2fG median=%5.2fG min=%5.2fG max=%5.2fG drops=%d\n",
		r.Proto, r.MeanUtilPct, p5, p50, r.Gbps[0], r.Gbps[n-1], r.FabricDrops)
}

// WriteFCT prints Fig 10(b) percentiles.
func WriteFCT(w io.Writer, r *FCTResult) {
	fmt.Fprintf(w, "%-9s flows=%4d  p50=%7.3fms p90=%7.3fms p99=%7.3fms max=%7.3fms\n",
		r.Proto, r.Ms.N(), r.Ms.Quantile(0.5), r.Ms.Quantile(0.9), r.Ms.Quantile(0.99), r.Ms.Max())
}

// WriteIncast prints one Fig 10(c) row.
func WriteIncast(w io.Writer, r *IncastResult) {
	fmt.Fprintf(w, "%-9s N=%3d  first=%8.2fms last=%8.2fms spread=%.2fx\n",
		r.Proto, r.Backends, r.FirstMs, r.LastMs, r.LastMs/maxf(r.FirstMs, 1e-9))
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
