package experiments

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"

	"stardust/internal/sim"
	"stardust/internal/workload"
)

// newMatrixRNG derives the traffic-matrix RNG from the run seed,
// independent of the testbed's flow-choice RNG, so every protocol of a
// sweep sees the identical matrix.
func newMatrixRNG(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed ^ 0x5DEECE66D))
}

// This file holds the experiments that need the topology-faithful
// per-link fabric (internal/fabric): per-link load balance under cell
// spraying vs ECMP, goodput through link failures, and the hotspot /
// all-to-all traffic matrices.

// LinkLoadResult summarizes how evenly one run spread bytes over the
// measured uplink set. The §5.3 claim is per device — every FA (or edge
// switch) spreads its own offered load evenly over its own uplinks — so
// DevSpreadPct is the headline number: the worst (max-min)/mean across
// the per-device uplink groups. The global numbers additionally fold in
// per-device demand differences (hairpin flows never touch an uplink).
type LinkLoadResult struct {
	Mode         string // "spray" (Stardust cells) or "ecmp" (per-flow hashing)
	Links        int
	MinBytes     float64
	MaxBytes     float64
	MeanBytes    float64
	CoVPct       float64 // global coefficient of variation, percent
	SpreadPct    float64 // global (max-min)/mean, percent
	DevSpreadPct float64 // worst per-device uplink spread, percent
	MeanUtilPct  float64 // edge utilization sanity check
}

// LinkLoad runs a permutation workload and measures per-uplink byte
// counts over the measurement window. Mode "spray" runs the Stardust
// substrate over the per-link cell fabric and reads the FA uplinks; mode
// "ecmp" runs DCTCP on the fat-tree and reads the edge-switch uplinks —
// the §5.3 near-perfect-balance claim against flow-hash collisions.
func LinkLoad(cfg HtsimConfig, mode string) (*LinkLoadResult, error) {
	var proto Protocol
	switch mode {
	case "spray":
		proto = ProtoStardust
		cfg.FullFabric = true
	case "ecmp":
		proto = ProtoDCTCP
	default:
		return nil, fmt.Errorf("experiments: linkload mode %q (want spray or ecmp)", mode)
	}
	tb, err := newTestbed(cfg, proto)
	if err != nil {
		return nil, err
	}
	perm := workload.Permutation(tb.rng, tb.hosts)
	runners := make([]flowRunner, tb.hosts)
	for src := 0; src < tb.hosts; src++ {
		runners[src] = tb.launchFlow(proto, src, perm[src], 0, 0, nil)
	}
	linkBytes := func() []uint64 {
		if tb.fab != nil {
			return tb.fab.FAUplinkBytes()
		}
		return tb.ft.EdgeUplinkBytes()
	}
	perDev := cfg.K / 2 // uplinks per FA and per edge switch alike
	tb.runUntil(cfg.Warmup)
	base := linkBytes()
	goodputBase := make([]int64, tb.hosts)
	for i, r := range runners {
		goodputBase[i] = r.deliveredAt()
	}
	tb.runUntil(cfg.Warmup + cfg.Duration)

	end := linkBytes()
	res := &LinkLoadResult{Mode: mode, Links: len(end)}
	var sum, sumSq float64
	res.MinBytes = math.Inf(1)
	for i := range end {
		b := float64(end[i] - base[i])
		sum += b
		sumSq += b * b
		res.MinBytes = math.Min(res.MinBytes, b)
		res.MaxBytes = math.Max(res.MaxBytes, b)
	}
	nl := float64(len(end))
	res.MeanBytes = sum / nl
	if res.MeanBytes > 0 {
		variance := sumSq/nl - res.MeanBytes*res.MeanBytes
		res.CoVPct = 100 * math.Sqrt(math.Max(variance, 0)) / res.MeanBytes
		res.SpreadPct = 100 * (res.MaxBytes - res.MinBytes) / res.MeanBytes
	}
	for dev := 0; dev+perDev <= len(end); dev += perDev {
		var dMin, dMax, dSum float64
		dMin = math.Inf(1)
		for p := 0; p < perDev; p++ {
			b := float64(end[dev+p] - base[dev+p])
			dSum += b
			dMin = math.Min(dMin, b)
			dMax = math.Max(dMax, b)
		}
		if dSum > 0 {
			if s := 100 * (dMax - dMin) / (dSum / float64(perDev)); s > res.DevSpreadPct {
				res.DevSpreadPct = s
			}
		}
	}
	var good float64
	for i, r := range runners {
		good += float64(r.deliveredAt()-goodputBase[i]) * 8 / cfg.Duration.Seconds()
	}
	res.MeanUtilPct = 100 * good / (float64(tb.hosts) * tb.linkRate())
	return res, nil
}

// FailureResult is one fabric/failures run: aggregate goodput per time
// bin through a mid-run link-failure event, plus the reachability
// cross-check.
type FailureResult struct {
	FailedLinks   int
	BinMs         float64
	Gbps          []float64 // aggregate goodput per bin, in failure-relative order
	FailBin       int       // index of the bin in which the failure fired
	PreGbps       float64   // mean over bins before the failure
	DipGbps       float64   // minimum bin at/after the failure
	RecoveredGbps float64   // mean over the last quarter of the bins
	Unreachable   int       // reach-table cross-check (0 = self-healed)
	FabricDrops   uint64
	ReasmTimeouts uint64
}

// FabricFailures runs a permutation workload on the Stardust substrate
// over the per-link fabric, kills nFail random fabric links at failAt
// (relative to the end of warmup), and bins aggregate goodput to expose
// the dip and the self-healing recovery (§5.9, Appendix E).
func FabricFailures(cfg HtsimConfig, nFail int, failAt, bin sim.Time) (*FailureResult, error) {
	cfg.FullFabric = true
	cfg.Shards = 0 // FailLink fires mid-run outside barrier context: solo only
	tb, err := newTestbed(cfg, ProtoStardust)
	if err != nil {
		return nil, err
	}
	if bin <= 0 {
		bin = sim.Millisecond
	}
	perm := workload.Permutation(tb.rng, tb.hosts)
	runners := make([]flowRunner, tb.hosts)
	for src := 0; src < tb.hosts; src++ {
		runners[src] = tb.launchFlow(ProtoStardust, src, perm[src], 0, 0, nil)
	}
	delivered := func() float64 {
		var sum int64
		for _, r := range runners {
			sum += r.deliveredAt()
		}
		return float64(sum)
	}
	if nFail > tb.fab.NumLinks() {
		nFail = tb.fab.NumLinks()
	}
	victims := tb.rng.Perm(tb.fab.NumLinks())[:nFail]

	tb.s.RunUntil(cfg.Warmup)
	res := &FailureResult{FailedLinks: nFail, BinMs: bin.Seconds() * 1e3, FailBin: -1}
	prev := delivered()
	failed := false
	for t := cfg.Warmup; t < cfg.Warmup+cfg.Duration; t += bin {
		if !failed && t-cfg.Warmup >= failAt {
			for _, v := range victims {
				tb.fab.FailLink(v)
			}
			failed = true
			res.FailBin = len(res.Gbps)
		}
		tb.s.RunUntil(t + bin)
		now := delivered()
		res.Gbps = append(res.Gbps, (now-prev)*8/bin.Seconds()/1e9)
		prev = now
	}
	if !failed { // failAt beyond the window: fail at the very end
		for _, v := range victims {
			tb.fab.FailLink(v)
		}
		res.FailBin = len(res.Gbps)
	}

	res.DipGbps = math.Inf(1)
	var pre, preN, rec, recN float64
	lastQuarter := len(res.Gbps) - (len(res.Gbps)-res.FailBin)/4
	for i, g := range res.Gbps {
		if i < res.FailBin {
			pre += g
			preN++
		} else if g < res.DipGbps {
			res.DipGbps = g
		}
		if i >= lastQuarter {
			rec += g
			recN++
		}
	}
	if preN > 0 {
		res.PreGbps = pre / preN
	}
	if recN > 0 {
		res.RecoveredGbps = rec / recN
	}
	if math.IsInf(res.DipGbps, 1) {
		res.DipGbps = 0
	}
	res.Unreachable = tb.fab.UnreachablePairs()
	res.FabricDrops = tb.fab.Drops()
	res.ReasmTimeouts = tb.sd.ReasmTimeouts
	return res, nil
}

// MatrixResult is one traffic-matrix run (hotspot, all-to-all): the
// per-flow goodput distribution plus hot/cold aggregates when the matrix
// designates hot destinations.
type MatrixResult struct {
	Proto       Protocol
	Flows       int
	Gbps        []float64 // sorted per-flow goodput
	MeanUtilPct float64
	HotGbps     float64 // aggregate goodput into hot destinations
	ColdMeanGps float64 // mean per-flow goodput of the remaining flows
}

// RunMatrix launches one long-running flow per matrix entry and measures
// per-flow goodput over the window. hot, when non-nil, marks destinations
// whose incoming flows are aggregated separately.
func RunMatrix(cfg HtsimConfig, proto Protocol, flows []workload.Flow, hot map[int]bool) (*MatrixResult, error) {
	tb, err := newTestbed(cfg, proto)
	if err != nil {
		return nil, err
	}
	runners := make([]flowRunner, len(flows))
	for i, f := range flows {
		if f.Src == f.Dst || f.Src >= tb.hosts || f.Dst >= tb.hosts {
			return nil, fmt.Errorf("experiments: bad matrix flow %d->%d for %d hosts", f.Src, f.Dst, tb.hosts)
		}
		runners[i] = tb.launchFlow(proto, f.Src, f.Dst, 0, 0, nil)
	}
	tb.runUntil(cfg.Warmup)
	base := make([]int64, len(runners))
	for i, r := range runners {
		base[i] = r.deliveredAt()
	}
	tb.runUntil(cfg.Warmup + cfg.Duration)

	res := &MatrixResult{Proto: proto, Flows: len(flows)}
	var sum, cold, coldN float64
	for i, r := range runners {
		gbps := float64(r.deliveredAt()-base[i]) * 8 / cfg.Duration.Seconds() / 1e9
		res.Gbps = append(res.Gbps, gbps)
		sum += gbps
		if hot != nil {
			if hot[flows[i].Dst] {
				res.HotGbps += gbps
			} else {
				cold += gbps
				coldN++
			}
		}
	}
	sort.Float64s(res.Gbps)
	if coldN > 0 {
		res.ColdMeanGps = cold / coldN
	}
	res.MeanUtilPct = 100 * sum * 1e9 / (float64(tb.hosts) * tb.linkRate())
	return res, nil
}

// HotspotRun builds the hotspot matrix for the testbed size and runs it.
func HotspotRun(cfg HtsimConfig, proto Protocol, hotspots int, hotFraction float64) (*MatrixResult, []int, error) {
	hosts := cfg.K * cfg.K * cfg.K / 4
	rng := newMatrixRNG(cfg.Seed)
	flows, hotList := workload.Hotspot(rng, hosts, hotspots, hotFraction)
	hot := make(map[int]bool, len(hotList))
	for _, h := range hotList {
		hot[h] = true
	}
	r, err := RunMatrix(cfg, proto, flows, hot)
	return r, hotList, err
}

// AllToAllRun builds the complete matrix for the testbed size and runs it.
func AllToAllRun(cfg HtsimConfig, proto Protocol) (*MatrixResult, error) {
	hosts := cfg.K * cfg.K * cfg.K / 4
	return RunMatrix(cfg, proto, workload.AllToAll(hosts), nil)
}

// WriteLinkLoad prints one linkload row.
func WriteLinkLoad(w io.Writer, r *LinkLoadResult) {
	fmt.Fprintf(w, "%-6s links=%3d  mean=%8.0fB  dev-spread=%6.2f%%  spread=%6.2f%%  cov=%6.2f%%  min=%8.0fB max=%8.0fB  util=%5.1f%%\n",
		r.Mode, r.Links, r.MeanBytes, r.DevSpreadPct, r.SpreadPct, r.CoVPct, r.MinBytes, r.MaxBytes, r.MeanUtilPct)
}

// WriteFailures prints one failures summary row.
func WriteFailures(w io.Writer, r *FailureResult) {
	fmt.Fprintf(w, "fail=%d links: pre=%6.2fG dip=%6.2fG recovered=%6.2fG  unreachable=%d drops=%d reasm-timeouts=%d\n",
		r.FailedLinks, r.PreGbps, r.DipGbps, r.RecoveredGbps, r.Unreachable, r.FabricDrops, r.ReasmTimeouts)
	fmt.Fprintf(w, "  goodput/bin (G): ")
	for i, g := range r.Gbps {
		if i == r.FailBin {
			fmt.Fprintf(w, "| ")
		}
		fmt.Fprintf(w, "%.1f ", g)
	}
	fmt.Fprintln(w)
}

// WriteMatrix prints one traffic-matrix summary row.
func WriteMatrix(w io.Writer, kind string, r *MatrixResult) {
	n := len(r.Gbps)
	fmt.Fprintf(w, "%-9s %-8s flows=%5d  mean-util=%5.1f%%  p5=%5.2fG median=%5.2fG min=%5.2fG",
		r.Proto, kind, r.Flows, r.MeanUtilPct, r.Gbps[n/20], r.Gbps[n/2], r.Gbps[0])
	if r.HotGbps > 0 {
		fmt.Fprintf(w, "  hot-agg=%5.2fG cold-mean=%5.2fG", r.HotGbps, r.ColdMeanGps)
	}
	fmt.Fprintln(w)
}
