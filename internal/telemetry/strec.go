// The STREC1 stream codec: a durable, versioned, append-only encoding of
// fabric telemetry. A stream is a magic prefix followed by framed records;
// every frame is individually CRC-protected so truncation and corruption
// are detected at the exact frame, and unknown record types are skipped so
// a v1 reader survives a v1+n writer (forward compatibility).
//
//	stream := "STREC1\x00" | frame*
//	frame  := u8 type | uvarint len(body) | body | u32le crc32(type|body)
//
// Record types:
//
//	recHeader (1): JSON StreamHeader — format version, topology dims,
//	    scrape period, and the opaque run spec (raw JSON, so the codec
//	    does not depend on who produced the run).
//	recWindow (2): one scrape window, varint-delta-encoded:
//	    uvarint index | uvarint t |
//	    up bitmap (ceil(dirs/8) bytes) |
//	    dirs × (uvarint ΔfwdBytes | uvarint ΔfwdCells | uvarint Δdrops |
//	            uvarint queueBytes) |
//	    fas  × (uvarint ΔsinkCells | uvarint ΔsinkBytes)
//	recEvent (3): uvarint t | u8 kind | uvarint link
//
// Counters are cumulative and monotonic, so plain (unsigned) deltas
// against the previous window suffice; queue occupancy is instantaneous
// and encoded raw. The encoding is canonical — one byte sequence per
// counter history — which is what lets the CI determinism matrix compare
// whole streams with cmp across worker counts, shard counts and
// process placements.
package telemetry

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"stardust/internal/sim"
)

// Magic prefixes every STREC1 stream.
const Magic = "STREC1\x00"

// Record types.
const (
	recHeader byte = 1
	recWindow byte = 2
	recEvent  byte = 3
)

// Format is the STREC encoding version this package writes.
const Format = 1

// Event kinds carried by recEvent records.
const (
	EvLinkDown byte = 1
	EvLinkUp   byte = 2
)

// Errors the Reader distinguishes.
var (
	// ErrBadMagic: the stream does not start with the STREC1 magic.
	ErrBadMagic = errors.New("telemetry: not a STREC1 stream")
	// ErrTruncated: the stream ends mid-frame.
	ErrTruncated = errors.New("telemetry: truncated frame")
	// ErrCorrupt: a frame's CRC does not match its body.
	ErrCorrupt = errors.New("telemetry: corrupt frame (crc mismatch)")
)

// StreamHeader is the first record of every stream: everything a reader
// needs to interpret the windows that follow. Spec is the opaque recipe of
// the recorded run (JSON, owned by the producer — internal/distsim stores
// its Spec there with the shard count zeroed, since placement must not
// change the stream's bytes).
type StreamHeader struct {
	Format int `json:"format"`
	Dirs   int `json:"dirs"` // directed links per window record
	FAs    int `json:"fas"`  // delivery sinks per window record
	// Topo is the canonical topology spec string (topo.Graph.Spec) of the
	// recorded fabric — enough to rebuild the exact wiring on any reader,
	// whatever the topology family. K is the legacy shorthand kept for
	// streams recorded before pluggable topologies (Clos sized from K).
	Topo     string          `json:"topo,omitempty"`
	K        int             `json:"k,omitempty"`
	Seed     int64           `json:"seed,omitempty"`
	ScrapePs sim.Time        `json:"scrape_ps"`
	Spec     json.RawMessage `json:"spec,omitempty"`
}

// DirSample is one directed link's state at a scrape instant: cumulative
// forwarding counters plus the instantaneous queue occupancy.
type DirSample struct {
	FwdBytes   uint64
	FwdCells   uint64
	Drops      uint64
	QueueBytes uint64
	Up         bool
}

// SinkSample is one destination FA's cumulative delivery counters.
type SinkSample struct {
	Cells uint64
	Bytes uint64
}

// Snapshot is the full fabric state at one scrape instant, in absolute
// counters. The Writer computes deltas internally; callers reuse one
// Snapshot across windows, so the steady-state encode path allocates
// nothing.
type Snapshot struct {
	T     sim.Time
	Dirs  []DirSample
	Sinks []SinkSample
}

// maxBody caps a frame body against corrupt length prefixes.
const maxBody = 1 << 26

// Writer encodes a STREC1 stream onto w. Not safe for concurrent use.
type Writer struct {
	w           io.Writer
	hdr         StreamHeader
	buf         []byte  // frame scratch, reused
	bodyScratch []byte  // window-body scratch, reused
	evScratch   []byte  // event-body scratch, reused
	typScratch  [1]byte // crc input, reused (a literal slice would escape)
	prev        Snapshot
	index       uint64

	// Windows and Bytes count what has been written — the recorder's
	// cheap self-telemetry.
	Windows uint64
	Bytes   uint64
}

// NewWriter starts a stream: it writes the magic and the header record
// immediately so even an empty stream is self-describing.
func NewWriter(w io.Writer, hdr StreamHeader) (*Writer, error) {
	hdr.Format = Format
	sw := &Writer{w: w, hdr: hdr}
	sw.prev.Dirs = make([]DirSample, hdr.Dirs)
	sw.prev.Sinks = make([]SinkSample, hdr.FAs)
	if _, err := io.WriteString(w, Magic); err != nil {
		return nil, err
	}
	sw.Bytes += uint64(len(Magic))
	body, err := json.Marshal(hdr)
	if err != nil {
		return nil, err
	}
	if err := sw.frame(recHeader, body); err != nil {
		return nil, err
	}
	return sw, nil
}

// Header returns the stream header as written.
func (sw *Writer) Header() StreamHeader { return sw.hdr }

// frame emits one framed record built from body.
func (sw *Writer) frame(typ byte, body []byte) error {
	if cap(sw.buf) < len(body)+16 {
		sw.buf = make([]byte, 0, len(body)+64)
	}
	b := sw.buf[:0]
	b = append(b, typ)
	b = binary.AppendUvarint(b, uint64(len(body)))
	b = append(b, body...)
	sw.typScratch[0] = typ
	crc := crc32.ChecksumIEEE(sw.typScratch[:])
	crc = crc32.Update(crc, crc32.IEEETable, body)
	b = binary.LittleEndian.AppendUint32(b, crc)
	sw.buf = b
	n, err := sw.w.Write(b)
	sw.Bytes += uint64(n)
	return err
}

// WriteWindow appends one scrape window. snap must have exactly the
// header's Dirs and FAs entries; counters must be monotonic against the
// previous window. The snapshot is copied into the writer's delta state,
// so the caller may reuse it.
func (sw *Writer) WriteWindow(snap *Snapshot) error {
	if len(snap.Dirs) != sw.hdr.Dirs || len(snap.Sinks) != sw.hdr.FAs {
		return fmt.Errorf("telemetry: snapshot shape (%d dirs, %d sinks) does not match header (%d, %d)",
			len(snap.Dirs), len(snap.Sinks), sw.hdr.Dirs, sw.hdr.FAs)
	}
	body := sw.body(snap)
	if err := sw.frame(recWindow, body); err != nil {
		return err
	}
	// Commit deltas only after a successful write.
	sw.prev.T = snap.T
	copy(sw.prev.Dirs, snap.Dirs)
	copy(sw.prev.Sinks, snap.Sinks)
	sw.index++
	sw.Windows++
	return nil
}

// body encodes the window record body into the reusable scratch buffer.
func (sw *Writer) body(snap *Snapshot) []byte {
	need := 24 + (len(snap.Dirs)+7)/8 + 44*len(snap.Dirs) + 20*len(snap.Sinks)
	if cap(sw.bodyScratch) < need {
		sw.bodyScratch = make([]byte, 0, need)
	}
	b := sw.bodyScratch[:0]
	b = binary.AppendUvarint(b, sw.index)
	b = binary.AppendUvarint(b, uint64(snap.T))
	var bits byte
	for d := range snap.Dirs {
		if snap.Dirs[d].Up {
			bits |= 1 << (d % 8)
		}
		if d%8 == 7 {
			b = append(b, bits)
			bits = 0
		}
	}
	if len(snap.Dirs)%8 != 0 {
		b = append(b, bits)
	}
	for d := range snap.Dirs {
		cur, old := &snap.Dirs[d], &sw.prev.Dirs[d]
		b = binary.AppendUvarint(b, cur.FwdBytes-old.FwdBytes)
		b = binary.AppendUvarint(b, cur.FwdCells-old.FwdCells)
		b = binary.AppendUvarint(b, cur.Drops-old.Drops)
		b = binary.AppendUvarint(b, cur.QueueBytes)
	}
	for f := range snap.Sinks {
		cur, old := &snap.Sinks[f], &sw.prev.Sinks[f]
		b = binary.AppendUvarint(b, cur.Cells-old.Cells)
		b = binary.AppendUvarint(b, cur.Bytes-old.Bytes)
	}
	sw.bodyScratch = b
	return b
}

// WriteEvent appends one event record.
func (sw *Writer) WriteEvent(t sim.Time, kind byte, link int) error {
	b := sw.evScratch[:0]
	b = binary.AppendUvarint(b, uint64(t))
	b = append(b, kind)
	b = binary.AppendUvarint(b, uint64(link))
	sw.evScratch = b
	return sw.frame(recEvent, b)
}

// Window is one decoded scrape window, in both delta and absolute form.
// The slices alias the Reader's internal state and are valid until the
// next Next call.
type Window struct {
	Index uint64
	T     sim.Time
	// Deltas over the previous window.
	DFwdBytes, DFwdCells, DDrops []uint64
	DSinkCells, DSinkBytes       []uint64
	// Absolute (cumulative) state at T.
	Dirs  []DirSample
	Sinks []SinkSample
}

// Event is one decoded event record.
type Event struct {
	T    sim.Time
	Kind byte
	Link int
}

// Reader decodes a STREC1 stream.
type Reader struct {
	r      io.Reader
	hdr    StreamHeader
	win    Window
	ev     Event
	body   []byte
	opened bool
}

// NewReader wraps r. The header is read lazily on the first call that
// needs it (Header or Next).
func NewReader(r io.Reader) *Reader { return &Reader{r: r} }

// open consumes the magic and the header record.
func (sr *Reader) open() error {
	if sr.opened {
		return nil
	}
	magic := make([]byte, len(Magic))
	if _, err := io.ReadFull(sr.r, magic); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return ErrBadMagic
		}
		return err
	}
	if string(magic) != Magic {
		return ErrBadMagic
	}
	typ, body, err := sr.readFrame()
	if err != nil {
		if err == io.EOF {
			return ErrTruncated
		}
		return err
	}
	if typ != recHeader {
		return fmt.Errorf("telemetry: stream starts with record type %d, want header", typ)
	}
	if err := json.Unmarshal(body, &sr.hdr); err != nil {
		return fmt.Errorf("telemetry: bad stream header: %w", err)
	}
	if sr.hdr.Format != Format {
		return fmt.Errorf("telemetry: stream format %d, this reader speaks %d", sr.hdr.Format, Format)
	}
	if sr.hdr.Dirs < 0 || sr.hdr.FAs < 0 || sr.hdr.Dirs > 1<<22 || sr.hdr.FAs > 1<<22 {
		return fmt.Errorf("telemetry: implausible header dims (%d dirs, %d fas)", sr.hdr.Dirs, sr.hdr.FAs)
	}
	sr.win = Window{
		DFwdBytes:  make([]uint64, sr.hdr.Dirs),
		DFwdCells:  make([]uint64, sr.hdr.Dirs),
		DDrops:     make([]uint64, sr.hdr.Dirs),
		DSinkCells: make([]uint64, sr.hdr.FAs),
		DSinkBytes: make([]uint64, sr.hdr.FAs),
		Dirs:       make([]DirSample, sr.hdr.Dirs),
		Sinks:      make([]SinkSample, sr.hdr.FAs),
	}
	sr.opened = true
	return nil
}

// Header returns the stream header.
func (sr *Reader) Header() (StreamHeader, error) {
	if err := sr.open(); err != nil {
		return StreamHeader{}, err
	}
	return sr.hdr, nil
}

// readFrame reads one frame: type, verified body. io.EOF only at a clean
// frame boundary; a partial frame is ErrTruncated, a CRC mismatch
// ErrCorrupt.
func (sr *Reader) readFrame() (byte, []byte, error) {
	var t [1]byte
	if _, err := io.ReadFull(sr.r, t[:]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, ErrTruncated
	}
	n, err := binary.ReadUvarint(oneByteReader{sr.r})
	if err != nil {
		return 0, nil, ErrTruncated
	}
	if n > maxBody {
		return 0, nil, fmt.Errorf("telemetry: frame body %d bytes exceeds limit", n)
	}
	if uint64(cap(sr.body)) < n {
		sr.body = make([]byte, n)
	}
	body := sr.body[:n]
	if _, err := io.ReadFull(sr.r, body); err != nil {
		return 0, nil, ErrTruncated
	}
	var crcb [4]byte
	if _, err := io.ReadFull(sr.r, crcb[:]); err != nil {
		return 0, nil, ErrTruncated
	}
	crc := crc32.ChecksumIEEE(t[:])
	crc = crc32.Update(crc, crc32.IEEETable, body)
	if crc != binary.LittleEndian.Uint32(crcb[:]) {
		return 0, nil, ErrCorrupt
	}
	return t[0], body, nil
}

// oneByteReader adapts an io.Reader to io.ByteReader without buffering
// (the varint length must not over-read into the body).
type oneByteReader struct{ r io.Reader }

func (o oneByteReader) ReadByte() (byte, error) {
	var b [1]byte
	if _, err := io.ReadFull(o.r, b[:]); err != nil {
		if err == io.EOF {
			return 0, io.EOF
		}
		return 0, ErrTruncated
	}
	return b[0], nil
}

// Next returns the next record: (*Window, nil, nil), (nil, *Event, nil),
// or (nil, nil, io.EOF) at a clean end of stream. Unknown record types
// are skipped. The returned pointers are invalidated by the next call.
func (sr *Reader) Next() (*Window, *Event, error) {
	if err := sr.open(); err != nil {
		return nil, nil, err
	}
	for {
		typ, body, err := sr.readFrame()
		if err != nil {
			return nil, nil, err
		}
		switch typ {
		case recWindow:
			if err := sr.decodeWindow(body); err != nil {
				return nil, nil, err
			}
			return &sr.win, nil, nil
		case recEvent:
			if err := sr.decodeEvent(body); err != nil {
				return nil, nil, err
			}
			return nil, &sr.ev, nil
		case recHeader:
			return nil, nil, fmt.Errorf("telemetry: duplicate header record")
		default:
			// Unknown record type from a newer writer: skip.
		}
	}
}

// uv pops one uvarint off b.
func uv(b []byte) (uint64, []byte, error) {
	v, k := binary.Uvarint(b)
	if k <= 0 {
		return 0, nil, ErrTruncated
	}
	return v, b[k:], nil
}

func (sr *Reader) decodeWindow(b []byte) error {
	var err error
	var v uint64
	if v, b, err = uv(b); err != nil {
		return err
	}
	sr.win.Index = v
	if v, b, err = uv(b); err != nil {
		return err
	}
	sr.win.T = sim.Time(v)
	nbits := (sr.hdr.Dirs + 7) / 8
	if len(b) < nbits {
		return ErrTruncated
	}
	bitmap := b[:nbits]
	b = b[nbits:]
	for d := 0; d < sr.hdr.Dirs; d++ {
		up := bitmap[d/8]&(1<<(d%8)) != 0
		var db, dc, dd, q uint64
		if db, b, err = uv(b); err != nil {
			return err
		}
		if dc, b, err = uv(b); err != nil {
			return err
		}
		if dd, b, err = uv(b); err != nil {
			return err
		}
		if q, b, err = uv(b); err != nil {
			return err
		}
		sr.win.DFwdBytes[d] = db
		sr.win.DFwdCells[d] = dc
		sr.win.DDrops[d] = dd
		abs := &sr.win.Dirs[d]
		abs.FwdBytes += db
		abs.FwdCells += dc
		abs.Drops += dd
		abs.QueueBytes = q
		abs.Up = up
	}
	for f := 0; f < sr.hdr.FAs; f++ {
		var dc, db uint64
		if dc, b, err = uv(b); err != nil {
			return err
		}
		if db, b, err = uv(b); err != nil {
			return err
		}
		sr.win.DSinkCells[f] = dc
		sr.win.DSinkBytes[f] = db
		sr.win.Sinks[f].Cells += dc
		sr.win.Sinks[f].Bytes += db
	}
	if len(b) != 0 {
		return fmt.Errorf("telemetry: %d trailing bytes in window record", len(b))
	}
	return nil
}

func (sr *Reader) decodeEvent(b []byte) error {
	var err error
	var v uint64
	if v, b, err = uv(b); err != nil {
		return err
	}
	sr.ev.T = sim.Time(v)
	if len(b) < 1 {
		return ErrTruncated
	}
	sr.ev.Kind = b[0]
	b = b[1:]
	if v, b, err = uv(b); err != nil {
		return err
	}
	sr.ev.Link = int(v)
	if len(b) != 0 {
		return fmt.Errorf("telemetry: %d trailing bytes in event record", len(b))
	}
	return nil
}
