package core

import (
	"stardust/internal/cell"
	"stardust/internal/reach"
	"stardust/internal/sched"
	"stardust/internal/sim"
	"stardust/internal/voq"
)

// FabricAdapter is the Stardust edge device (§4.1): it parses host packets
// into VOQs, requests and receives credits, chops credit batches into
// packed cells sprayed across its uplinks, and on the egress side
// reassembles cells into packets and schedules its host ports.
type FabricAdapter struct {
	net *Network
	ID  uint16

	// Ingress.
	voqs       *voq.Manager
	frags      map[fragKey]*cell.Fragmenter
	uplinks    []*link
	upQueues   [][]*cell.Cell
	upSending  []bool
	hostInBusy []sim.Time // per host-port ingress serializer (store-and-forward)

	// Routing.
	table    *reach.Table
	monitors []*reach.Monitor
	spreader *reach.Spreader
	reachTmr *sim.Timer

	// Egress.
	scheds     []*sched.PortScheduler
	schedTmrs  []*sim.Timer
	reasm      map[reasmKey]*cell.Reassembler
	egressQ    []int64 // bytes queued per host port
	egressBusy []bool
	egressPkts [][]*Packet
	expireTmr  *sim.Timer

	// Stats
	CellsSent     uint64
	CellsReceived uint64
	FCIReceived   uint64
	UplinkDrops   uint64
	NoRouteDrops  uint64
	ReasmDrops    uint64
	EgressPeakB   int64
}

type reasmKey struct {
	src uint16
	tc  uint8
}

// fragKey scopes one cell sequence space: all VOQs toward the same
// destination FA and traffic class share a fragmenter, because the
// destination reassembles one stream per (source FA, traffic class).
type fragKey struct {
	dst uint16
	tc  uint8
}

func newFabricAdapter(n *Network, id uint16, numUplinks int) *FabricAdapter {
	fa := &FabricAdapter{
		net:        n,
		ID:         id,
		voqs:       voq.NewManager(n.Cfg.FAIngressBufBytes),
		frags:      make(map[fragKey]*cell.Fragmenter),
		uplinks:    make([]*link, numUplinks),
		upQueues:   make([][]*cell.Cell, numUplinks),
		upSending:  make([]bool, numUplinks),
		hostInBusy: make([]sim.Time, n.Cfg.HostPortsPerFA),
		table:      reach.NewTable(n.clos.NumFA, numUplinks),
		spreader:   reach.NewSpreader(numUplinks, 4, n.Cfg.Seed+int64(id)*31337),
		reasm:      make(map[reasmKey]*cell.Reassembler),
		egressQ:    make([]int64, n.Cfg.HostPortsPerFA),
		egressBusy: make([]bool, n.Cfg.HostPortsPerFA),
		egressPkts: make([][]*Packet, n.Cfg.HostPortsPerFA),
	}
	for i := 0; i < numUplinks; i++ {
		fa.monitors = append(fa.monitors, reach.NewMonitor(n.Cfg.ReachInterval, n.Cfg.ReachThreshold))
	}
	for p := 0; p < n.Cfg.HostPortsPerFA; p++ {
		cfg := n.Cfg.Credit
		cfg.PortRateBps = n.Cfg.HostPortBps
		fa.scheds = append(fa.scheds, sched.New(cfg))
	}
	fa.voqs.OnActivate = fa.onVOQActivate
	return fa
}

func (fa *FabricAdapter) start() {
	// Reachability: advertise self on every uplink, monitor the adverts
	// coming back down from tier 1.
	fa.reachTmr = sim.NewTimer(fa.net.Sim)
	var tick func()
	tick = func() {
		fa.reachTick()
		fa.reachTmr.Arm(fa.net.Cfg.ReachInterval, tick)
	}
	offset := sim.Time((int64(fa.ID)*40503 + 17) % int64(fa.net.Cfg.ReachInterval))
	fa.net.Sim.After(offset, tick)

	// Per-port credit generation loops.
	for p := range fa.scheds {
		port := p
		tmr := sim.NewTimer(fa.net.Sim)
		fa.schedTmrs = append(fa.schedTmrs, tmr)
		var loop func()
		loop = func() {
			s := fa.scheds[port]
			if c, ok := s.NextCredit(); ok {
				fa.net.sendFAtoFA(fa.ID, c.To.SrcFA, creditGrant{
					SrcFA:   c.To.SrcFA,
					DstFA:   fa.ID,
					DstPort: uint8(port),
					TC:      c.To.TC,
					Bytes:   c.Bytes,
				})
			}
			tmr.Arm(s.CreditInterval(), loop)
		}
		tmr.Arm(fa.scheds[port].CreditInterval(), loop)
	}

	// Reassembly expiry sweep.
	fa.expireTmr = sim.NewTimer(fa.net.Sim)
	var sweep func()
	sweep = func() {
		now := fa.net.Sim.Now()
		for _, r := range fa.reasm {
			if n := r.Expire(now); n > 0 {
				fa.ReasmDrops += uint64(n)
			}
		}
		fa.expireTmr.Arm(fa.net.Cfg.ReassemblyTimeout/2, sweep)
	}
	fa.expireTmr.Arm(fa.net.Cfg.ReassemblyTimeout/2, sweep)
}

func (fa *FabricAdapter) reachTick() {
	now := fa.net.Sim.Now()
	for port, mon := range fa.monitors {
		if fa.uplinks[port] == nil {
			continue
		}
		if mon.Tick(now) {
			fa.table.LinkDown(port)
		}
	}
	self := reach.NewBitmap(fa.net.clos.NumFA)
	self.Set(int(fa.ID))
	msgs := reach.BuildMessages(fa.ID, self, fa.net.clos.NumFA)
	for _, l := range fa.uplinks {
		if l == nil {
			continue
		}
		for _, m := range msgs {
			m.Faulty = l.faulty
			l.sendMsg(reachMsg{msg: m})
		}
	}
}

// Converged reports whether this FA currently has at least one live path
// to every other FA.
func (fa *FabricAdapter) Converged() bool {
	for dst := 0; dst < fa.net.clos.NumFA; dst++ {
		if dst == int(fa.ID) {
			continue
		}
		if !fa.table.Reachable(dst) {
			return false
		}
	}
	return true
}

// ingress accepts a packet from a host (§4.1 ingress path). With
// store-and-forward the packet enters its VOQ only after full reception at
// the host port rate.
func (fa *FabricAdapter) ingress(p *Packet) bool {
	k := voq.Key{DstFA: p.DstFA, DstPort: p.DstPort, TC: p.TC}
	if fa.net.Cfg.StoreAndForward {
		now := fa.net.Sim.Now()
		// Serialize arriving packets per ingress host port.
		port := int(p.SrcPort) % len(fa.hostInBusy)
		start := fa.hostInBusy[port]
		if start < now {
			start = now
		}
		rxDone := start + sim.Time(float64(p.Size*8)/fa.net.Cfg.HostPortBps*float64(sim.Second))
		fa.hostInBusy[port] = rxDone
		fa.net.Sim.At(rxDone, func() { fa.enqueue(k, p) })
		return true
	}
	return fa.enqueue(k, p)
}

func (fa *FabricAdapter) enqueue(k voq.Key, p *Packet) bool {
	ok := fa.voqs.Enqueue(k, cell.PacketRef{ID: p.ID, Size: p.Size})
	if !ok {
		fa.net.discard(p.ID)
	}
	return ok
}

// onVOQActivate fires when a VOQ turns non-empty: request credit from the
// destination's egress scheduler (§3.3); low-latency classes transmit
// immediately (§5.6).
func (fa *FabricAdapter) onVOQActivate(k voq.Key, q *voq.Queue) {
	fa.net.sendFAtoFA(fa.ID, k.DstFA, creditRequest{
		SrcFA:   fa.ID,
		DstFA:   k.DstFA,
		DstPort: k.DstPort,
		TC:      k.TC,
		Backlog: q.Bytes(),
	})
	if fa.net.Cfg.LowLatencyTCs[k.TC] {
		fa.net.Sim.After(0, func() { fa.grant(k, fa.net.Cfg.Credit.CreditBytes) })
	}
}

// onCtrl handles control messages arriving at this FA.
func (fa *FabricAdapter) onCtrl(port int, m any) {
	switch v := m.(type) {
	case reachMsg:
		mon := fa.monitors[port]
		wasUp := mon.State() == reach.LinkUpState
		mon.OnMessage(fa.net.Sim.Now(), v.msg.Faulty)
		if mon.State() == reach.LinkUpState {
			fa.table.ApplyMessage(port, v.msg)
		} else if wasUp {
			fa.table.LinkDown(port)
		}
	}
}

// onFAMsg handles end-to-end control messages (requests and credits).
func (fa *FabricAdapter) onFAMsg(m any) {
	switch v := m.(type) {
	case creditRequest:
		fa.scheds[v.DstPort].Request(sched.Requester{SrcFA: v.SrcFA, TC: v.TC}, v.Backlog)
	case creditGrant:
		fa.grant(voq.Key{DstFA: v.DstFA, DstPort: v.DstPort, TC: v.TC}, v.Bytes)
	}
}

// grant releases a credit-worth of packets from the VOQ, fragments them
// into packed cells and sprays the cells across the eligible uplinks
// (§3.2, §3.4).
func (fa *FabricAdapter) grant(k voq.Key, bytes int64) {
	batch := fa.voqs.Grant(k, bytes)
	if len(batch) == 0 {
		return
	}
	// Refresh the egress scheduler's backlog view (withdraws at zero).
	fa.net.sendFAtoFA(fa.ID, k.DstFA, creditRequest{
		SrcFA: fa.ID, DstFA: k.DstFA, DstPort: k.DstPort, TC: k.TC,
		Backlog: fa.voqs.Backlog(k),
	})
	fk := fragKey{dst: k.DstFA, tc: k.TC}
	fr := fa.frags[fk]
	if fr == nil {
		fr = cell.NewFragmenter(fa.net.Cfg.CellSize, fa.net.Cfg.Packing)
		fa.frags[fk] = fr
	}
	now := fa.net.Sim.Now()
	for _, ref := range batch {
		if p := fa.net.packet(ref.ID); p != nil {
			p.Dequeued = now
		}
	}
	cells := fr.Fragment(fa.ID, k.DstFA, k.TC, batch)
	eligible := fa.table.Links(int(k.DstFA))
	for _, c := range cells {
		out := fa.spreader.Next(eligible)
		if out < 0 {
			fa.NoRouteDrops++
			fa.net.discard(discardIDs(c)...)
			continue
		}
		fa.sendOnUplink(out, eligible, c)
	}
}

// sendOnUplink enqueues a cell on the chosen uplink; if that serializer's
// queue is full it falls back to the other eligible links (the load
// balancer weighs link occupancy, §4.2) and drops only when every path is
// saturated.
func (fa *FabricAdapter) sendOnUplink(port int, eligible reach.Bitmap, c *cell.Cell) {
	for tries := 0; tries < len(fa.uplinks); tries++ {
		if len(fa.upQueues[port]) < fa.net.Cfg.FAUplinkQueueCells {
			fa.upQueues[port] = append(fa.upQueues[port], c)
			if !fa.upSending[port] {
				fa.drainUplink(port)
			}
			return
		}
		next := fa.spreader.Next(eligible)
		if next < 0 {
			break
		}
		port = next
	}
	fa.UplinkDrops++
	fa.net.discard(discardIDs(c)...)
}

func (fa *FabricAdapter) drainUplink(port int) {
	q := fa.upQueues[port]
	if len(q) == 0 {
		fa.upSending[port] = false
		return
	}
	fa.upSending[port] = true
	c := q[0]
	fa.upQueues[port] = q[1:]
	fa.CellsSent++
	txDone := fa.uplinks[port].sendCell(c)
	fa.net.Sim.At(txDone, func() { fa.drainUplink(port) })
}

// onFabricCell receives a data cell from the fabric: reassemble, and when
// packets complete, queue them on their egress port (§4.1 egress path).
func (fa *FabricAdapter) onFabricCell(port int, c *cell.Cell) {
	_ = port
	fa.CellsReceived++
	if c.Header.Flags&cell.FlagFCI != 0 {
		fa.FCIReceived++
		// Throttle the schedulers of the ports this cell feeds (§4.2).
		seen := map[uint8]bool{}
		for _, seg := range c.Segments {
			if p := fa.net.packet(seg.Packet.ID); p != nil && !seen[p.DstPort] {
				seen[p.DstPort] = true
				fa.scheds[p.DstPort].OnFCI()
			}
		}
	}
	rk := reasmKey{src: c.Header.Src, tc: c.Header.TC}
	r := fa.reasm[rk]
	if r == nil {
		r = cell.NewReassembler(fa.net.Cfg.ReassemblySkew, fa.net.Cfg.ReassemblyTimeout)
		fa.reasm[rk] = r
	}
	done := r.Push(fa.net.Sim.Now(), c)
	for _, ref := range done {
		p := fa.net.packet(ref.ID)
		if p == nil {
			continue // dropped elsewhere; tail arrived anyway
		}
		p.Reassembled = fa.net.Sim.Now()
		fa.egressEnqueue(p)
	}
}

func (fa *FabricAdapter) egressEnqueue(p *Packet) {
	port := int(p.DstPort)
	fa.egressQ[port] += int64(p.Size)
	if fa.egressQ[port] > fa.EgressPeakB {
		fa.EgressPeakB = fa.egressQ[port]
	}
	fa.egressPkts[port] = append(fa.egressPkts[port], p)
	// Egress buffer watermarks gate the credit scheduler (§4.1).
	if fa.egressQ[port] > fa.net.Cfg.FAEgressBufBytes*3/4 {
		fa.scheds[port].Pause()
	}
	if !fa.egressBusy[port] {
		fa.drainEgress(port)
	}
}

func (fa *FabricAdapter) drainEgress(port int) {
	pkts := fa.egressPkts[port]
	if len(pkts) == 0 {
		fa.egressBusy[port] = false
		return
	}
	fa.egressBusy[port] = true
	p := pkts[0]
	fa.egressPkts[port] = pkts[1:]
	txTime := sim.Time(float64(p.Size*8) / fa.net.Cfg.HostPortBps * float64(sim.Second))
	fa.net.Sim.After(txTime, func() {
		fa.egressQ[port] -= int64(p.Size)
		if fa.egressQ[port] < fa.net.Cfg.FAEgressBufBytes/2 && fa.scheds[port].Paused() {
			fa.scheds[port].Resume()
		}
		fa.net.deliver(p)
		fa.drainEgress(port)
	})
}

// IngressStats exposes the VOQ manager for inspection.
func (fa *FabricAdapter) IngressStats() *voq.Manager { return fa.voqs }

// Scheduler returns the egress credit scheduler of the given host port.
func (fa *FabricAdapter) Scheduler(port int) *sched.PortScheduler { return fa.scheds[port] }

// Table exposes the adapter's reachability table for inspection.
func (fa *FabricAdapter) Table() *reach.Table { return fa.table }
