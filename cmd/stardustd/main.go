// Command stardustd is the chassis management daemon: the long-running
// serving face of the repository. It manages a live cell fabric the way
// the paper's single-management-point claim demands — device inventory,
// per-link telemetry, failure/withdrawal/recovery events, anomaly
// detection — and serves scenario runs over HTTP through a bounded job
// queue with a content-addressed result cache (identical requests never
// re-simulate).
//
//	stardustd -addr :8080 -fabric-k 8 -chaos-every-ms 50
//
//	# registry + parameter docs
//	curl localhost:8080/api/v1/scenarios
//	# submit a run (cached by scenario+params+seed)
//	curl -X POST localhost:8080/api/v1/runs -d '{"scenario":"htsim/permutation","params":{"k":"4","proto":"Stardust"},"seed":7}'
//	# status, streamed progress, result bytes
//	curl localhost:8080/api/v1/runs/run-000001
//	curl localhost:8080/api/v1/runs/run-000001/stream
//	curl localhost:8080/api/v1/runs/run-000001/result
//	# chassis state
//	curl localhost:8080/api/v1/fabric
//	curl localhost:8080/api/v1/fabric/telemetry
//	curl "localhost:8080/api/v1/fabric/events?since=0"
//	curl localhost:8080/metrics
//	# durable telemetry stream + analytics (with -fabric-telem-us)
//	curl -o fabric.strec localhost:8080/api/v1/telemetry/stream
//	curl "localhost:8080/api/v1/telemetry/findings?follow=1"
//	# digital-twin replay of a recorded stream with a what-if failure
//	curl -X POST --data-binary @trace.strec "localhost:8080/api/v1/replay?fail_link=3"
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"time"

	"stardust/internal/cluster"
	"stardust/internal/mgmt"
	_ "stardust/internal/scenarios"
	"stardust/internal/sim"
)

func main() {
	addr := flag.String("addr", ":8080", "HTTP listen address")
	clusterSelf := flag.String("cluster-self", "", "this node's advertised base URL (e.g. http://10.0.0.1:8080)")
	clusterPeers := flag.String("cluster-peers", "", "comma-separated base URLs of every ring member, self included")
	clusterVNodes := flag.Int("cluster-vnodes", 0, "virtual ring points per node (0 = default)")
	queueDepth := flag.Int("queue-depth", 64, "bounded run-queue capacity")
	queueWorkers := flag.Int("queue-workers", 2, "concurrent scenario runs")
	runWorkers := flag.Int("run-workers", 0, "parallel instances per run (0 = all CPUs)")
	fabricK := flag.Int("fabric-k", 4, "managed fabric size (handed to topo.ByName, 0 = no live fabric)")
	fabricTopo := flag.String("fabric-topo", "", "managed fabric topology: clos (default), sshuffle, star, or a full topo spec string")
	fabricShards := flag.Int("fabric-shards", 1, "event-loop shards for the managed fabric (>1 = parallel sharded simulation)")
	fabricLoad := flag.Float64("fabric-load", 0.3, "offered load fraction on the managed fabric")
	transportHostsPer := flag.Int("transport-hosts-per", 0, "run the sharded Stardust transport overlay with N hosts per FA (TCP permutation load, telemetry at /api/v1/transport; 0 = raw cell injectors)")
	telemUs := flag.Int("fabric-telem-us", 0, "record the managed fabric as a STREC1 telemetry stream, one window per N sim-us (0 = off; serves /api/v1/telemetry/*)")
	telemCapMB := flag.Int("fabric-telem-cap-mb", 64, "in-memory cap for the recorded telemetry stream, in MiB")
	chaosMs := flag.Int("chaos-every-ms", 0, "fail one random link every N sim-ms (0 = no chaos)")
	healMs := flag.Int("heal-after-ms", 5, "chaos-failed links recover after N sim-ms")
	scrapeUs := flag.Int("scrape-every-us", 1000, "telemetry scrape period in sim-us")
	stepMs := flag.Int("sim-step-ms", 1, "sim time advanced per pacing tick, in ms")
	tickMs := flag.Int("tick-wall-ms", 100, "wall-clock pacing tick, in ms")
	seed := flag.Int64("seed", 1, "fabric traffic/chaos RNG seed")
	flag.Parse()

	q := mgmt.NewRunQueue(*queueDepth, *queueWorkers, *runWorkers)
	defer q.Shutdown()

	var fr *mgmt.FabricRun
	if *fabricK > 0 {
		var err error
		fr, err = mgmt.NewFabricRun(mgmt.FabricRunConfig{
			K:                 *fabricK,
			Topo:              *fabricTopo,
			Load:              *fabricLoad,
			FailEvery:         sim.Time(*chaosMs) * sim.Millisecond,
			HealAfter:         sim.Time(*healMs) * sim.Millisecond,
			Seed:              *seed,
			Shards:            *fabricShards,
			TransportHostsPer: *transportHostsPer,
			Telem:             sim.Time(*telemUs) * sim.Microsecond,
			TelemCap:          *telemCapMB << 20,
			Controller: mgmt.Config{
				ScrapeEvery: sim.Time(*scrapeUs) * sim.Microsecond,
			},
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "stardustd:", err)
			os.Exit(1)
		}
		log.Printf("managing %s", fr)
		// Pace the live fabric: advance sim-step-ms of simulated time per
		// wall tick, forever. All HTTP reads go through the controller's
		// snapshots, never the simulator.
		go func() {
			step := sim.Time(*stepMs) * sim.Millisecond
			tick := time.NewTicker(time.Duration(*tickMs) * time.Millisecond)
			defer tick.Stop()
			for range tick.C {
				fr.Advance(step)
			}
		}()
	}

	hs := mgmt.NewServer(q, fr)
	if *clusterPeers != "" {
		if *clusterSelf == "" {
			fmt.Fprintln(os.Stderr, "stardustd: -cluster-peers requires -cluster-self")
			os.Exit(1)
		}
		node, err := cluster.New(cluster.Config{
			Self:   *clusterSelf,
			Peers:  strings.Split(*clusterPeers, ","),
			VNodes: *clusterVNodes,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "stardustd:", err)
			os.Exit(1)
		}
		hs.SetCluster(node)
		log.Printf("clustered: self=%s ring=%v", node.Self(), node.Ring().Nodes())
	}
	// Every connection timeout set (a bare http.Server has none, so one
	// stalled client per goroutine could hold connections forever); the
	// NDJSON streaming endpoints extend their own write deadline per tick.
	srv := mgmt.NewHTTPServer(*addr, hs, mgmt.HTTPTimeouts{})
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt)
		<-sig
		log.Print("shutting down")
		srv.Close()
	}()
	log.Printf("stardustd serving on %s (queue depth %d, %d run workers)", *addr, *queueDepth, *queueWorkers)
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fmt.Fprintln(os.Stderr, "stardustd:", err)
		os.Exit(1)
	}
}
