package analytic

import (
	"math"
	"testing"
	"testing/quick"

	"stardust/internal/sim"
	"stardust/internal/topo"
)

func TestAppendixBWorkedExample(t *testing.T) {
	// Appendix B: S=64B, B=12.8Tbps, G=20B, f=1GHz, c=1 -> P = 19.047.
	m := DefaultSwitch
	if got := m.PacketRate(64); math.Abs(got-19.047e9) > 0.01e9 {
		t.Fatalf("R(64) = %v, want ~19.047e9", got)
	}
	if got := m.ParallelismStandard(64); math.Abs(got-19.047) > 0.01 {
		t.Fatalf("P(64) = %v, want 19.047", got)
	}
	// "a packet size of 256B will require P = 6.06" (paper computes with
	// G=20 -> 5.797; the printed 6.06 uses G=0 -> 6.25... accept §2.3's
	// 5.8Gpps anchor instead).
	if got := m.PacketRate(256); math.Abs(got-5.797e9) > 0.01e9 {
		t.Fatalf("R(256) = %v, want ~5.8e9 (§2.3)", got)
	}
}

func TestFig3Anchors(t *testing.T) {
	m := DefaultSwitch
	fe := m.ParallelismStardust()
	// "Packing data provides 41% improvement for 513B packets"
	imp513 := m.ParallelismStandard(513)/fe - 1
	if math.Abs(imp513-0.41) > 0.02 {
		t.Fatalf("513B improvement = %.3f, want ~0.41", imp513)
	}
	// "and 18% for 1025B packets" (our G=20 model gives ~20%)
	imp1025 := m.ParallelismStandard(1025)/fe - 1
	if math.Abs(imp1025-0.18) > 0.04 {
		t.Fatalf("1025B improvement = %.3f, want ~0.18", imp1025)
	}
	// "For small packets ... outperforms a packet-based design by a factor
	// of x4" — the sub-64B/64B region reaches 3-4x.
	ratio64 := m.ParallelismStandard(64) / fe
	if ratio64 < 2.8 || ratio64 > 4.2 {
		t.Fatalf("64B ratio = %.2f, want ~3-4", ratio64)
	}
}

func TestFig3Sawtooth(t *testing.T) {
	m := DefaultSwitch
	// Crossing a bus-width boundary must increase required parallelism.
	if m.ParallelismStandard(257) <= m.ParallelismStandard(256) {
		t.Fatal("no sawtooth jump at 257B")
	}
	if m.ParallelismStandard(513) <= m.ParallelismStandard(512) {
		t.Fatal("no sawtooth jump at 513B")
	}
	// Stardust is flat and below the standard switch for every size.
	rows := Fig3(m, nil)
	fe := rows[0].Stardust
	for _, r := range rows {
		if r.Stardust != fe {
			t.Fatalf("Stardust parallelism not constant at %dB", r.PacketBytes)
		}
		// Near exact bus-width multiples a standard switch briefly dips a
		// few percent below the packed design (it pays no cell header);
		// Fig 3 shows the same touch points.
		if r.Standard < fe*0.88 {
			t.Fatalf("standard switch (%v) below Stardust (%v) at %dB beyond tolerance",
				r.Standard, fe, r.PacketBytes)
		}
	}
}

// Property: required parallelism never drops below the pure data-path bound
// B/(8*W*f) and equals packet-rate/pipeline-rate scaled by occupied slots.
func TestPropertyParallelismBounds(t *testing.T) {
	m := DefaultSwitch
	floor := m.BandwidthBps / (8 * float64(m.BusWidth) * m.ClockHz)
	f := func(sRaw uint16) bool {
		s := int(sRaw%4000) + 40
		p := m.ParallelismStandard(s)
		slots := math.Ceil(float64(s) / float64(m.BusWidth))
		want := slots * m.PacketRate(s) / m.PipelineRate()
		if math.Abs(p-want) > 1e-9 {
			return false
		}
		// With the 20B gap the bound weakens slightly for giant packets.
		return p > floor*0.85
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFig10dTable(t *testing.T) {
	r := PaperAreaRatios
	if r.HeaderProcessing != 0.13 || r.NetworkInterface != 0.30 ||
		r.OtherLogic != 0.60 || r.IO != 0.875 {
		t.Fatal("published per-block ratios corrupted")
	}
	got := DefaultAreaBreakdown.RelativeAreaPerTbps(r)
	if math.Abs(got-r.RelAreaPerTbps) > 0.015 {
		t.Fatalf("compositional model gives %.3f, published %.3f", got, r.RelAreaPerTbps)
	}
	// The breakdown must be a partition of the die.
	b := DefaultAreaBreakdown
	if math.Abs(b.HeaderProcessing+b.NetworkInterface+b.OtherLogic+b.IO-1) > 1e-9 {
		t.Fatal("area breakdown does not sum to 1")
	}
}

func TestVOQMemory(t *testing.T) {
	// Appendix C: 128K VOQs consume roughly 4 MB.
	if got := VOQMemoryBytes(128 << 10); got != 4<<20 {
		t.Fatalf("VOQ memory = %d, want 4MB", got)
	}
}

func TestReachabilityTableBits(t *testing.T) {
	tor, fe := ReachabilityTableBits(100000, 256, 40)
	if tor != 100000*(32+8) {
		t.Fatalf("ToR bits = %d", tor)
	}
	if fe != 2500*8 {
		t.Fatalf("FE bits = %d", fe)
	}
	// Appendix C: ~two orders of magnitude smaller.
	if ratio := float64(tor) / float64(fe); ratio < 100 {
		t.Fatalf("table ratio = %v, want >= 100", ratio)
	}
}

func TestOpticPrices(t *testing.T) {
	for lanes, want := range map[int]float64{1: 125, 2: 280, 4: 435} {
		got, err := OpticPrice(lanes)
		if err != nil || got != want {
			t.Fatalf("OpticPrice(%d) = %v, %v", lanes, got, err)
		}
	}
	if _, err := OpticPrice(8); err == nil {
		t.Fatal("8 lanes should be unsupported")
	}
}

func TestFig11aStardustAlwaysCheaper(t *testing.T) {
	rows, err := Fig11a(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	for _, row := range rows {
		for dev, rel := range row.Relative {
			if rel > 100.0 {
				t.Errorf("hosts=%d vs %s: Stardust costs %.1f%% (>100%%)", row.Hosts, dev, rel)
			}
			if rel < 20 {
				t.Errorf("hosts=%d vs %s: implausibly cheap %.1f%%", row.Hosts, dev, rel)
			}
		}
	}
	// §7: "The cost of a large scale DCN can be cut in half": at 1e6 hosts
	// the cheapest comparison should approach ~50-70%.
	last := rows[len(rows)-1]
	min := 100.0
	for _, rel := range last.Relative {
		if rel < min {
			min = rel
		}
	}
	if min > 75 {
		t.Errorf("large-scale best saving only %.1f%%, expected <= 75%%", min)
	}
}

func TestFig11bPower(t *testing.T) {
	// §7 anchor: ~78% saving within the fabric for a 10K-host network vs
	// the L=8 fat-tree.
	saving := FabricPowerSaving(topo.FT400Gx32, 10000)
	if math.Abs(saving-78) > 6 {
		t.Fatalf("fabric power saving = %.1f%%, want ~78%%", saving)
	}
	rows := Fig11b(nil)
	for _, row := range rows {
		for dev, rel := range row.Relative {
			if rel > 100.5 {
				t.Errorf("hosts=%d vs %s: Stardust uses %.1f%% power (>100%%)", row.Hosts, dev, rel)
			}
		}
	}
}

func TestAppendixEWorkedExample(t *testing.T) {
	p := DefaultResilience
	if got := p.MessageInterval(); got != 10*sim.Microsecond {
		t.Fatalf("t' = %v, want 10us", got)
	}
	if got := p.MessagesPerTable(); got != 7 {
		t.Fatalf("M = %d, want 7", got)
	}
	if got := p.Hops(); got != 3 {
		t.Fatalf("hops = %d, want 3", got)
	}
	// §5.9: 210 us single-pass propagation.
	if got := p.PropagationTime(); got != 210*sim.Microsecond {
		t.Fatalf("propagation = %v, want 210us", got)
	}
	// Appendix E: 652 us recovery (with fiber), 630 us without.
	if got := p.RecoveryTime().Microseconds(); math.Abs(got-652.05) > 0.2 {
		t.Fatalf("recovery = %vus, want ~652us", got)
	}
	noFiber := p
	noFiber.PropagationDelay = nil
	if got := noFiber.RecoveryTime(); got != 630*sim.Microsecond {
		t.Fatalf("recovery (no fiber) = %v, want 630us", got)
	}
	// 0.04% bandwidth overhead.
	if got := p.BandwidthOverhead(); math.Abs(got-0.000384) > 1e-6 {
		t.Fatalf("overhead = %v, want 0.0384%%", got)
	}
}

// Property: recovery time scales linearly in threshold and message count.
func TestPropertyResilienceScaling(t *testing.T) {
	f := func(thRaw, tiersRaw uint8) bool {
		p := DefaultResilience
		p.PropagationDelay = nil
		p.Threshold = int(thRaw%5) + 1
		p.Tiers = int(tiersRaw%3) + 1
		base := p
		base.Threshold = 1
		return p.RecoveryTime() == sim.Time(int64(base.RecoveryTime())*int64(p.Threshold))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
