// Space Shuffle (Yu & Qian): every switch gets a coordinate in each of S
// independent ring spaces — a position in a random circular permutation —
// and is physically wired to its predecessor and successor in every
// space. Greedy routing forwards to any neighbor strictly closer to the
// destination under the min-over-spaces circular distance; because the
// best space's ring successor is always a neighbor, greedy always makes
// progress on the intact graph, and "strictly closer" makes any multipath
// spray over the candidates provably loop-free.
//
// Every switch is simultaneously an edge device (hosts hang off every
// switch), so unlike the Clos there is no dedicated core tier: the same
// nodes originate, transit and sink traffic.
package topo

import (
	"fmt"
	"math/rand"
	"sort"
)

// SpaceShuffle is a switch-centric random ring-space topology.
type SpaceShuffle struct {
	N      int   // switches
	Spaces int   // ring spaces
	Seed   int64 // ring-permutation seed (part of the spec)

	pos   [][]int // pos[s][node] = position of node on ring s
	ring  [][]int // ring[s][position] = node
	nbr   [][]int // nbr[n] = sorted neighbor node ids; port p connects to nbr[n][p]
	links []GraphLink
}

// NewSpaceShuffle builds n switches on s random ring spaces. The wiring
// is a pure function of (n, s, seed): every process parsing the same spec
// builds the identical graph.
func NewSpaceShuffle(n, s int, seed int64) (*SpaceShuffle, error) {
	if n < 4 || s < 1 {
		return nil, fmt.Errorf("topo: sshuffle needs >= 4 switches and >= 1 space, got n=%d s=%d", n, s)
	}
	g := &SpaceShuffle{N: n, Spaces: s, Seed: seed}
	rng := rand.New(rand.NewSource(seed))
	g.ring = make([][]int, s)
	g.pos = make([][]int, s)
	adj := make([]map[int]bool, n)
	for i := range adj {
		adj[i] = make(map[int]bool)
	}
	for sp := 0; sp < s; sp++ {
		g.ring[sp] = rng.Perm(n)
		g.pos[sp] = make([]int, n)
		for p, node := range g.ring[sp] {
			g.pos[sp][node] = p
		}
		for p, node := range g.ring[sp] {
			succ := g.ring[sp][(p+1)%n]
			adj[node][succ] = true
			adj[succ][node] = true
		}
	}
	// Ports in sorted-neighbor order; links once per unordered pair, in
	// (lower node, then neighbor) order so link indices are canonical.
	g.nbr = make([][]int, n)
	for u := range adj {
		for v := range adj[u] {
			g.nbr[u] = append(g.nbr[u], v)
		}
		sort.Ints(g.nbr[u])
	}
	portOf := func(u, v int) int { return sort.SearchInts(g.nbr[u], v) }
	for u := 0; u < n; u++ {
		for _, v := range g.nbr[u] {
			if v > u {
				g.links = append(g.links, GraphLink{A: u, APort: portOf(u, v), B: v, BPort: portOf(v, u)})
			}
		}
	}
	return g, nil
}

// Spec implements Graph.
func (g *SpaceShuffle) Spec() string {
	return fmt.Sprintf("sshuffle:n=%d,s=%d,seed=%d", g.N, g.Spaces, g.Seed)
}

// NumNodes implements Graph.
func (g *SpaceShuffle) NumNodes() int { return g.N }

// NumTiers implements Graph: a flat, single-tier fabric.
func (g *SpaceShuffle) NumTiers() int { return 1 }

// NumEdge implements Graph: every switch fronts hosts.
func (g *SpaceShuffle) NumEdge() int { return g.N }

// EdgeNode implements Graph.
func (g *SpaceShuffle) EdgeNode(e int) int { return e }

// Node implements Graph.
func (g *SpaceShuffle) Node(i int) NodeInfo {
	return NodeInfo{Name: fmt.Sprintf("SS%d", i), Role: "SS", Tier: 0, Ports: len(g.nbr[i])}
}

// GraphLinks implements Graph.
func (g *SpaceShuffle) GraphLinks() []GraphLink { return g.links }

// Dist is the routing metric: the minimum over all spaces of the circular
// distance between u's and t's positions on that space's ring.
func (g *SpaceShuffle) Dist(u, t int) int {
	best := g.N
	for sp := 0; sp < g.Spaces; sp++ {
		d := g.pos[sp][u] - g.pos[sp][t]
		if d < 0 {
			d = -d
		}
		if g.N-d < d {
			d = g.N - d
		}
		if d < best {
			best = d
		}
	}
	return best
}

// Routes implements Graph. On the intact graph the candidates are the
// greedy ones: every neighbor strictly closer under the ring metric
// (never empty — the best space's ring successor qualifies). Under
// failures a stale greedy table can strand a node whose closer neighbors
// all died, so the rebuilt tables fall back to live-BFS distances — one
// consistent potential for the whole graph, which keeps the multipath
// sets loop-free (mixing the two metrics per node could cycle).
func (g *SpaceShuffle) Routes(up []bool) (descend [][][]int, climb [][]int) {
	climb = make([][]int, g.N)
	for i := range up {
		if !up[i] {
			return bfsRoutes(g, up), climb
		}
	}
	descend = make([][][]int, g.N)
	for n := range descend {
		descend[n] = make([][]int, g.N)
		for t := 0; t < g.N; t++ {
			if t == n {
				continue
			}
			dn := g.Dist(n, t)
			for p, v := range g.nbr[n] {
				if g.Dist(v, t) < dn {
					descend[n][t] = append(descend[n][t], p)
				}
			}
		}
	}
	return descend, climb
}
