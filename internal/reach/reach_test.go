package reach

import (
	"testing"
	"testing/quick"

	"stardust/internal/sim"
)

func TestBitmapBasics(t *testing.T) {
	b := NewBitmap(130)
	b.Set(0)
	b.Set(64)
	b.Set(129)
	if !b.Get(0) || !b.Get(64) || !b.Get(129) || b.Get(1) {
		t.Fatal("set/get broken")
	}
	if b.Count() != 3 {
		t.Fatalf("count = %d", b.Count())
	}
	b.Clear(64)
	if b.Get(64) || b.Count() != 2 {
		t.Fatal("clear broken")
	}
	c := b.Clone()
	c.Set(5)
	if b.Get(5) {
		t.Fatal("clone aliases")
	}
	b.Or(c)
	if !b.Get(5) {
		t.Fatal("or broken")
	}
	b.Reset()
	if b.Count() != 0 {
		t.Fatal("reset broken")
	}
}

// Property: Count equals the number of distinct set indices.
func TestPropertyBitmapCount(t *testing.T) {
	f := func(idxs []uint16) bool {
		b := NewBitmap(1 << 16)
		seen := map[uint16]bool{}
		for _, i := range idxs {
			b.Set(int(i))
			seen[i] = true
		}
		return b.Count() == len(seen)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMessagesRoundTrip(t *testing.T) {
	const numFA = 300 // needs 3 chunks
	set := NewBitmap(numFA)
	for _, fa := range []int{0, 127, 128, 255, 299} {
		set.Set(fa)
	}
	msgs := BuildMessages(42, set, numFA)
	if len(msgs) != 3 {
		t.Fatalf("messages = %d, want 3", len(msgs))
	}
	tbl := NewTable(numFA, 8)
	for _, m := range msgs {
		if m.Origin != 42 {
			t.Fatal("origin lost")
		}
		if err := tbl.ApplyMessage(3, m); err != nil {
			t.Fatal(err)
		}
	}
	for fa := 0; fa < numFA; fa++ {
		want := set.Get(fa)
		if got := tbl.Reachable(fa); got != want {
			t.Fatalf("FA %d reachable=%v want %v", fa, got, want)
		}
		if want && !tbl.Links(fa).Get(3) {
			t.Fatalf("FA %d not mapped to link 3", fa)
		}
	}
}

func TestApplyMessageWithdraws(t *testing.T) {
	tbl := NewTable(128, 4)
	full := NewBitmap(128)
	for i := 0; i < 128; i++ {
		full.Set(i)
	}
	for _, m := range BuildMessages(1, full, 128) {
		tbl.ApplyMessage(0, m)
	}
	if !tbl.Reachable(77) {
		t.Fatal("setup failed")
	}
	// A later advertisement without FA 77 must withdraw it.
	partial := full.Clone()
	partial.Clear(77)
	for _, m := range BuildMessages(1, partial, 128) {
		tbl.ApplyMessage(0, m)
	}
	if tbl.Reachable(77) {
		t.Fatal("withdrawal failed")
	}
	if !tbl.Reachable(76) {
		t.Fatal("collateral withdrawal")
	}
}

func TestFaultyAdvertisementWithdraws(t *testing.T) {
	tbl := NewTable(128, 4)
	full := NewBitmap(128)
	full.Set(5)
	for _, m := range BuildMessages(1, full, 128) {
		tbl.ApplyMessage(2, m)
	}
	if !tbl.Reachable(5) {
		t.Fatal("setup failed")
	}
	msgs := BuildMessages(1, full, 128)
	for i := range msgs {
		msgs[i].Faulty = true
		tbl.ApplyMessage(2, msgs[i])
	}
	if tbl.Reachable(5) {
		t.Fatal("faulty link still forwarding")
	}
}

func TestLinkDown(t *testing.T) {
	tbl := NewTable(128, 4)
	set := NewBitmap(128)
	set.Set(10)
	set.Set(20)
	for _, m := range BuildMessages(1, set, 128) {
		tbl.ApplyMessage(0, m)
		tbl.ApplyMessage(1, m)
	}
	tbl.LinkDown(0)
	if !tbl.Reachable(10) {
		t.Fatal("redundant link lost too")
	}
	if tbl.Links(10).Get(0) {
		t.Fatal("downed link still in table")
	}
	tbl.LinkDown(1)
	if tbl.Reachable(10) || tbl.Reachable(20) {
		t.Fatal("unreachable FA still reachable")
	}
	if tbl.ReachableSet().Count() != 0 {
		t.Fatal("reachable set not empty")
	}
}

func TestApplyMessageErrors(t *testing.T) {
	tbl := NewTable(128, 4)
	if err := tbl.ApplyMessage(9, Message{}); err == nil {
		t.Fatal("bad link must error")
	}
	if err := tbl.ApplyMessage(0, Message{Chunk: 5}); err == nil {
		t.Fatal("bad chunk must error")
	}
}

func TestSpreaderEvenness(t *testing.T) {
	// §5.3: "the same amount of data is sent down each link".
	s := NewSpreader(16, 4, 1)
	eligible := NewBitmap(16)
	for i := 0; i < 16; i++ {
		eligible.Set(i)
	}
	counts := make([]int, 16)
	const rounds = 1600
	for i := 0; i < rounds; i++ {
		l := s.Next(eligible)
		if l < 0 {
			t.Fatal("no link")
		}
		counts[l]++
	}
	for l, n := range counts {
		if n != rounds/16 {
			t.Fatalf("link %d got %d cells, want %d (perfect fluid)", l, n, rounds/16)
		}
	}
}

func TestSpreaderSkipsIneligible(t *testing.T) {
	s := NewSpreader(8, 4, 2)
	eligible := NewBitmap(8)
	eligible.Set(3)
	eligible.Set(6)
	counts := map[int]int{}
	for i := 0; i < 100; i++ {
		l := s.Next(eligible)
		if l != 3 && l != 6 {
			t.Fatalf("ineligible link %d chosen", l)
		}
		counts[l]++
	}
	if counts[3] != 50 || counts[6] != 50 {
		t.Fatalf("uneven split: %v", counts)
	}
}

func TestSpreaderEmptySet(t *testing.T) {
	s := NewSpreader(4, 4, 3)
	if l := s.Next(NewBitmap(4)); l != -1 {
		t.Fatalf("empty set returned %d", l)
	}
}

// Property: over any eligible subset, a full multiple of traversals visits
// each eligible link equally often.
func TestPropertySpreaderFairness(t *testing.T) {
	f := func(mask uint16, seed int64) bool {
		if mask == 0 {
			return true
		}
		s := NewSpreader(16, 1000000, seed) // no reshuffle mid-test
		eligible := NewBitmap(16)
		n := 0
		for i := 0; i < 16; i++ {
			if mask&(1<<i) != 0 {
				eligible.Set(i)
				n++
			}
		}
		counts := make([]int, 16)
		for i := 0; i < n*32; i++ {
			counts[s.Next(eligible)]++
		}
		for i := 0; i < 16; i++ {
			want := 0
			if eligible.Get(i) {
				want = 32
			}
			if counts[i] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMonitorUpDown(t *testing.T) {
	m := NewMonitor(10*sim.Microsecond, 3)
	if m.State() != LinkDownState {
		t.Fatal("monitor must start down")
	}
	// Three consecutive good messages bring it up.
	now := sim.Time(0)
	flipped := false
	for i := 0; i < 3; i++ {
		flipped = m.OnMessage(now, false)
		now += 10 * sim.Microsecond
	}
	if !flipped || m.State() != LinkUpState {
		t.Fatal("link did not come up after threshold messages")
	}
	// Keepalive loss: no message for > th*interval after the last one
	// (which arrived at now-10us).
	last := now - 10*sim.Microsecond
	if m.Tick(last + 25*sim.Microsecond) {
		t.Fatal("down too early")
	}
	if !m.Tick(last + 35*sim.Microsecond) {
		t.Fatal("keepalive loss not detected")
	}
	if m.State() != LinkDownState {
		t.Fatal("state wrong after loss")
	}
}

func TestMonitorFaultyMessage(t *testing.T) {
	m := NewMonitor(10*sim.Microsecond, 2)
	m.OnMessage(0, false)
	m.OnMessage(10, false)
	if m.State() != LinkUpState {
		t.Fatal("setup failed")
	}
	if !m.OnMessage(20, true) {
		t.Fatal("faulty message must down the link")
	}
	// One good message is not enough to recover with threshold 2.
	m.OnMessage(30, false)
	if m.State() != LinkDownState {
		t.Fatal("recovered too fast")
	}
	m.OnMessage(40, false)
	if m.State() != LinkUpState {
		t.Fatal("did not recover")
	}
}

func TestMessagesPerTable(t *testing.T) {
	// Appendix E: 32,000 hosts / 40 per FA = 800 FAs -> 7 messages.
	if got := MessagesPerTable(800); got != 7 {
		t.Fatalf("MessagesPerTable(800) = %d, want 7", got)
	}
	if got := MessagesPerTable(128); got != 1 {
		t.Fatalf("MessagesPerTable(128) = %d, want 1", got)
	}
	if got := MessagesPerTable(129); got != 2 {
		t.Fatalf("MessagesPerTable(129) = %d, want 2", got)
	}
}

// Regression: with a small reshuffle period and a sparse eligible set, the
// spreader must never fail to find an eligible link (a mid-scan reshuffle
// used to skip links).
func TestSpreaderSparseNeverFails(t *testing.T) {
	s := NewSpreader(8, 2, 42) // reshuffle every 2 rounds
	eligible := NewBitmap(8)
	eligible.Set(2)
	eligible.Set(5)
	for i := 0; i < 10000; i++ {
		if l := s.Next(eligible); l != 2 && l != 5 {
			t.Fatalf("iteration %d: got %d", i, l)
		}
	}
}
