package experiments

import (
	"testing"

	"stardust/internal/sim"
	"stardust/internal/workload"
)

func quickFabricCfg() HtsimConfig {
	cfg := QuickHtsim()
	cfg.Duration = 5 * sim.Millisecond
	cfg.Warmup = 2 * sim.Millisecond
	return cfg
}

// The full-fabric Stardust substrate must match the fluid model's headline
// result: a permutation at near-line-rate with zero fabric loss.
func TestFullFabricPermutation(t *testing.T) {
	cfg := quickFabricCfg()
	cfg.FullFabric = true
	r, err := Permutation(cfg, ProtoStardust)
	if err != nil {
		t.Fatal(err)
	}
	if r.MeanUtilPct < 90 {
		t.Fatalf("full-fabric mean util %.1f%%, want >= 90%%", r.MeanUtilPct)
	}
	if r.FabricDrops != 0 {
		t.Fatalf("healthy full fabric dropped %d cells", r.FabricDrops)
	}
}

func TestLinkLoadSprayVsECMP(t *testing.T) {
	cfg := quickFabricCfg()
	spray, err := LinkLoad(cfg, "spray")
	if err != nil {
		t.Fatal(err)
	}
	ecmp, err := LinkLoad(cfg, "ecmp")
	if err != nil {
		t.Fatal(err)
	}
	// §5.3: per-device cell spraying balances within a few percent; ECMP
	// flow hashing collides.
	if spray.DevSpreadPct > 5 {
		t.Fatalf("spray per-device spread %.2f%%, want <= 5%%", spray.DevSpreadPct)
	}
	if ecmp.DevSpreadPct < 2*spray.DevSpreadPct {
		t.Fatalf("ECMP spread %.2f%% not clearly worse than spray %.2f%%",
			ecmp.DevSpreadPct, spray.DevSpreadPct)
	}
	if spray.MeanUtilPct < 90 {
		t.Fatalf("spray util %.1f%%", spray.MeanUtilPct)
	}
	if _, err := LinkLoad(cfg, "bogus"); err == nil {
		t.Fatal("bad mode must error")
	}
}

func TestFabricFailuresRecovery(t *testing.T) {
	cfg := quickFabricCfg()
	cfg.Duration = 12 * sim.Millisecond
	// One link failure at K=4 cannot isolate an FA (each has two uplinks).
	r, err := FabricFailures(cfg, 1, 4*sim.Millisecond, sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if r.Unreachable != 0 {
		t.Fatalf("reach cross-check: %d unreachable pairs after one failure", r.Unreachable)
	}
	if r.PreGbps <= 0 || r.RecoveredGbps <= 0 {
		t.Fatalf("degenerate goodput: pre=%v recovered=%v", r.PreGbps, r.RecoveredGbps)
	}
	// Self-healing: the post-failure steady state recovers most of the
	// pre-failure goodput (one of 16 FA uplinks is gone, so not all).
	if r.RecoveredGbps < 0.6*r.PreGbps {
		t.Fatalf("no recovery: pre=%.1fG recovered=%.1fG", r.PreGbps, r.RecoveredGbps)
	}
	if r.RecoveredGbps < r.DipGbps {
		t.Fatalf("recovered %.1fG below dip %.1fG", r.RecoveredGbps, r.DipGbps)
	}
}

// Byte-identical determinism across runs: the engine's guarantee must
// extend to the new fabric experiments.
func TestFabricExperimentsDeterministic(t *testing.T) {
	cfg := quickFabricCfg()
	run := func() (float64, float64) {
		l, err := LinkLoad(cfg, "spray")
		if err != nil {
			t.Fatal(err)
		}
		f, err := FabricFailures(cfg, 1, 2*sim.Millisecond, sim.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		return l.MeanBytes, f.RecoveredGbps
	}
	a1, b1 := run()
	a2, b2 := run()
	if a1 != a2 || b1 != b2 {
		t.Fatalf("nondeterministic: (%v,%v) vs (%v,%v)", a1, b1, a2, b2)
	}
}

func TestHotspotRun(t *testing.T) {
	cfg := quickFabricCfg()
	r, hot, err := HotspotRun(cfg, ProtoStardust, 2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(hot) != 2 {
		t.Fatalf("hot list %v", hot)
	}
	if r.Flows != 16 {
		t.Fatalf("flows = %d, want one per host", r.Flows)
	}
	if r.HotGbps <= 0 {
		t.Fatal("no goodput into the hot destinations")
	}
	// The scheduled fabric must keep serving the non-hot flows.
	if r.ColdMeanGps <= 0 {
		t.Fatal("cold flows starved")
	}
}

func TestAllToAllRun(t *testing.T) {
	cfg := quickFabricCfg()
	r, err := AllToAllRun(cfg, ProtoStardust)
	if err != nil {
		t.Fatal(err)
	}
	if r.Flows != 16*15 {
		t.Fatalf("flows = %d", r.Flows)
	}
	if r.MeanUtilPct < 20 {
		t.Fatalf("all-to-all util %.1f%% collapsed", r.MeanUtilPct)
	}
}

func TestRunMatrixRejectsBadFlows(t *testing.T) {
	cfg := quickFabricCfg()
	if _, err := RunMatrix(cfg, ProtoStardust, []workload.Flow{{Src: 0, Dst: 0}}, nil); err == nil {
		t.Fatal("self-flow must error")
	}
}
