// Command stardust-pack regenerates Fig 8: the packet-packing throughput
// comparison of the NetFPGA reference switch, the NDP switch, non-packed
// cells, and Stardust packed cells (Fig 8a), plus the production-trace
// mixes (Fig 8b).
package main

import (
	"flag"
	"fmt"

	"stardust/internal/engine"
	_ "stardust/internal/scenarios"
)

func main() {
	clock := flag.Float64("clock", 150e6, "datapath clock in Hz")
	traces := flag.Bool("traces", true, "also print the Fig 8b trace mixes")
	eng := engine.AddFlags(flag.CommandLine)
	flag.Parse()

	p := engine.Params{"clock_hz": fmt.Sprintf("%.0f", *clock)}
	jobs := []engine.Job{{Scenario: "pack/fig8a", Params: p}}
	if *traces {
		jobs = append(jobs, engine.Job{Scenario: "pack/fig8b", Params: p})
	}
	engine.Main(eng, jobs)
}
