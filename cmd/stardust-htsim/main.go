// Command stardust-htsim regenerates the §6.3 protocol comparison
// (Fig 10a-c): permutation throughput, flow-completion times under
// background load, and incast completion, for MPTCP, DCTCP, DCQCN and
// Stardust. Each protocol (and incast fan-in) is an independent scenario
// instance, so -workers=N runs them in parallel.
package main

import (
	"flag"
	"fmt"

	"stardust/internal/engine"
	_ "stardust/internal/scenarios"
)

func main() {
	exp := flag.String("exp", "perm", "experiment: perm, fct, incast")
	k := flag.Int("k", 8, "fat-tree K (12 = the paper's 432 hosts)")
	durMs := flag.Int("dur", 20, "measurement window in ms")
	protos := flag.String("protos", "all", "comma-separated protocols or all")
	flows := flag.Int("flows", 100, "measured flows for -exp fct")
	incastN := flag.String("incastN", "4,8,16,32", "backend counts for -exp incast")
	eng := engine.AddFlags(flag.CommandLine)
	flag.Parse()

	base := engine.Params{
		"k":      fmt.Sprint(*k),
		"dur_ms": fmt.Sprint(*durMs),
		"proto":  *protos,
	}
	var job engine.Job
	switch *exp {
	case "perm":
		job = engine.Job{Scenario: "htsim/permutation", Params: base}
	case "fct":
		job = engine.Job{Scenario: "htsim/fct", Params: base.With("flows", fmt.Sprint(*flows))}
	case "incast":
		job = engine.Job{Scenario: "htsim/incast", Params: base.With("n", *incastN)}
	default:
		job = engine.Job{Scenario: "htsim/" + *exp, Params: base} // engine reports the unknown name
	}
	engine.Main(eng, []engine.Job{job})
}
