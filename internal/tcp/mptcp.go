package tcp

import (
	"fmt"

	"stardust/internal/netsim"
	"stardust/internal/sim"
)

// MPTCP is a multipath TCP connection: N NewReno subflows over distinct
// ECMP paths with Linked-Increases (LIA, RFC 6356) coupling, as used by
// the §6.3 comparison [72].
type MPTCP struct {
	Sim      *sim.Simulator
	Subflows []*Source
	Total    int64

	ackedTotal int64
	Done       bool
	DoneAt     sim.Time
	OnComplete func(*MPTCP)
	startAt    sim.Time
}

// NewMPTCP creates a connection with one subflow per forward/reverse route
// pair. totalBytes == 0 means a long-running connection.
func NewMPTCP(s *sim.Simulator, cfg Config, name string, totalBytes int64, fwd [][]netsim.Handler) *MPTCP {
	if len(fwd) == 0 {
		panic("tcp: MPTCP needs at least one subflow route")
	}
	m := &MPTCP{Sim: s, Total: totalBytes}
	var quota *Quota
	if totalBytes > 0 {
		quota = NewQuota(totalBytes)
	}
	for i, route := range fwd {
		sub := NewSource(s, cfg, fmt.Sprintf("%s/%d", name, i), 0, route)
		if quota != nil {
			sub.quota = quota
			sub.end = 0
		}
		sub.couple = m.liaIncrease
		sub.OnAcked = m.onAcked
		m.Subflows = append(m.Subflows, sub)
	}
	return m
}

// Start launches all subflows.
func (m *MPTCP) Start() {
	m.startAt = m.Sim.Now()
	for _, s := range m.Subflows {
		s.Start()
	}
}

// StartAt schedules Start.
func (m *MPTCP) StartAt(t sim.Time) { m.Sim.At(t, m.Start) }

// FCT returns the connection-level completion time.
func (m *MPTCP) FCT() sim.Time { return m.DoneAt - m.startAt }

// DeliveredB returns total bytes acked across subflows.
func (m *MPTCP) DeliveredB() int64 { return m.ackedTotal }

func (m *MPTCP) onAcked(n int64) {
	m.ackedTotal += n
	if m.Total > 0 && !m.Done && m.ackedTotal >= m.Total {
		m.Done = true
		m.DoneAt = m.Sim.Now()
		if m.OnComplete != nil {
			m.OnComplete(m)
		}
	}
}

// liaIncrease implements the RFC 6356 coupled increase: for each ACK on
// subflow r,
//
//	cwnd_r += min( alpha * acked * MSS / cwnd_total , acked * MSS / cwnd_r )
//
// with alpha = cwnd_total * max_r(cwnd_r/rtt_r^2) / (sum_r cwnd_r/rtt_r)^2.
func (m *MPTCP) liaIncrease(r *Source, acked int64) {
	var total float64
	var maxTerm float64
	var sumTerm float64
	for _, s := range m.Subflows {
		rtt := s.srtt.Seconds()
		if rtt <= 0 {
			rtt = 100e-6
		}
		total += s.cwnd
		t := s.cwnd / (rtt * rtt)
		if t > maxTerm {
			maxTerm = t
		}
		sumTerm += s.cwnd / rtt
	}
	if total <= 0 || sumTerm <= 0 {
		r.cwnd += float64(acked) * float64(r.Cfg.MSS) / r.cwnd
		return
	}
	alpha := total * maxTerm / (sumTerm * sumTerm)
	inc := alpha * float64(acked) * float64(r.Cfg.MSS) / total
	cap := float64(acked) * float64(r.Cfg.MSS) / r.cwnd
	if inc > cap {
		inc = cap
	}
	r.cwnd += inc
}
