package engine

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"
)

// Job requests one scenario run. Params are merged over the scenario's
// defaults; the scenario's Variants hook may then expand the job into
// several instances (e.g. one per protocol).
type Job struct {
	Scenario string
	Params   Params
	Seed     int64 // 0 = use Options.Seed
}

// Options configures a Run.
type Options struct {
	// Workers sets the worker-pool width; <= 0 means GOMAXPROCS.
	Workers int
	// Shards is the per-instance event-loop parallelism handed to
	// scenarios through Context.Shards; <= 0 means 1. It composes with
	// Workers: the pool parallelizes across instances, shards within one.
	Shards int
	// Topo is the fabric topology handed to topology-aware scenarios
	// through Context.Topo (the -topo flag); empty means the Clos.
	Topo string
	// Seed is the base seed for jobs that don't carry their own.
	Seed int64
	// Format selects the emission format: "text", "json" or "csv".
	Format string
	// Out receives the emitted results (deterministic byte stream).
	Out io.Writer
	// Timing, when non-nil, receives a wall-clock summary. It is kept
	// separate from Out so the result stream stays byte-identical across
	// runs and worker counts.
	Timing io.Writer
	// Progress, when non-nil, receives every instance result the moment
	// that instance finishes — out of request order, from the worker
	// goroutine that ran it (so it may be invoked concurrently). The
	// ordered, deterministic emission to Out is unaffected; this hook
	// exists so a serving layer can stream live run progress.
	Progress func(RunResult)
	// DistPeers > 0 asks dist-capable scenarios to run as a distributed
	// coordinator serving that many peer processes on DistListen instead
	// of executing shards in-process. The worker pool collapses to one:
	// concurrent instances would fight over the peers.
	DistPeers  int
	DistListen string
}

// RunResult is the outcome of one scenario instance.
type RunResult struct {
	Name    string
	Params  Params
	Seed    int64
	Result  Result
	Err     error
	Elapsed time.Duration
}

// instance is one unit of parallel work after variant expansion.
type instance struct {
	sc     *Scenario
	params Params
	seed   int64
}

// expand resolves jobs against the registry and applies variant
// expansion, preserving request order.
func expand(opts Options, jobs []Job) ([]instance, error) {
	var insts []instance
	for _, j := range jobs {
		sc, err := Lookup(j.Scenario)
		if err != nil {
			return nil, err
		}
		base := Params{}
		if sc.Defaults != nil {
			base = sc.Defaults.Clone()
		}
		if j.Params != nil {
			base = base.Merge(j.Params)
		}
		seed := j.Seed
		if seed == 0 {
			seed = opts.Seed
		}
		if seed == 0 {
			seed = 1
		}
		variants := []Params{base}
		if sc.Variants != nil {
			if v := sc.Variants(base); len(v) > 0 {
				variants = v
			}
		}
		for _, p := range variants {
			insts = append(insts, instance{sc: sc, params: p, seed: seed})
		}
	}
	return insts, nil
}

// Run expands jobs into instances, executes them on a worker pool, emits
// the results to opts.Out in request order, and returns them. Instances
// are independent simulations (each builds its own sim.Simulator), so the
// same jobs with the same seed produce a byte-identical Out stream at any
// worker count. The returned error is the first instance error, if any;
// all instances run regardless.
func Run(opts Options, jobs []Job) ([]RunResult, error) {
	insts, err := expand(opts, jobs)
	if err != nil {
		return nil, err
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if opts.DistPeers > 0 {
		workers = 1
	}
	shards := opts.Shards
	if shards <= 0 {
		shards = 1
	}
	if workers > len(insts) {
		workers = len(insts)
	}
	if workers < 1 {
		workers = 1
	}

	results := make([]RunResult, len(insts))
	start := time.Now()
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				in := insts[i]
				t0 := time.Now()
				res, err := runInstance(in, shards, opts)
				results[i] = RunResult{
					Name:    in.sc.Name,
					Params:  in.params,
					Seed:    in.seed,
					Result:  res,
					Err:     err,
					Elapsed: time.Since(t0),
				}
				if opts.Progress != nil {
					opts.Progress(results[i])
				}
			}
		}()
	}
	for i := range insts {
		work <- i
	}
	close(work)
	wg.Wait()
	wall := time.Since(start)

	if opts.Out != nil {
		if err := Emit(opts.Out, opts.Format, results); err != nil {
			return results, err
		}
	}
	if opts.Timing != nil {
		var busy time.Duration
		for _, r := range results {
			busy += r.Elapsed
		}
		fmt.Fprintf(opts.Timing, "engine: %d instance(s) on %d worker(s): %v wall, %v cpu-busy\n",
			len(results), workers, wall.Round(time.Millisecond), busy.Round(time.Millisecond))
	}
	for _, r := range results {
		if r.Err != nil {
			return results, fmt.Errorf("engine: %s (%s): %w", r.Name, r.Params, r.Err)
		}
	}
	return results, nil
}

// runInstance executes one instance, converting a panic in scenario code
// into an error so one bad instance cannot take down a sweep.
func runInstance(in instance, shards int, opts Options) (res Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("scenario panicked: %v", r)
		}
	}()
	return in.sc.Run(Context{
		Params:     in.params,
		Seed:       in.seed,
		Shards:     shards,
		Topo:       opts.Topo,
		DistPeers:  opts.DistPeers,
		DistListen: opts.DistListen,
	})
}
