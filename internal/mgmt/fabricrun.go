package mgmt

import (
	"fmt"
	"math/rand"
	"sync"

	"stardust/internal/fabric"
	"stardust/internal/netsim"
	"stardust/internal/parsim"
	"stardust/internal/sim"
	"stardust/internal/telemetry"
	"stardust/internal/topo"
)

// FabricRunConfig sizes the daemon's live fabric: the topology, a
// synthetic background load, and an optional failure/recovery chaos
// schedule that keeps the event bus and the self-healing path exercised.
type FabricRunConfig struct {
	// Topo selects the topology family ("clos", "sshuffle", "star", or a
	// full spec string accepted by topo.ParseSpec). Empty means "clos", so
	// older configurations keep their meaning.
	Topo string
	// K sizes the topology via topo.ByName (for "clos" this is the K-ary
	// fat-tree edge of fabric.ClosFor).
	K int // default 4
	// Load is the offered load per FA as a fraction of its uplink
	// capacity.
	Load float64 // default 0.3
	// CellBytes is the synthetic cell size.
	CellBytes int // default 512
	// FailEvery, when > 0, fails one random healthy link every period.
	FailEvery sim.Time
	// HealAfter is how long a chaos-failed link stays down.
	HealAfter sim.Time // default 5ms
	// Seed feeds the traffic and chaos RNGs.
	Seed int64 // default 1
	// Shards, when > 1, runs the fabric on a parsim engine partitioned
	// across that many event loops: telemetry scrapes and chaos run in
	// barrier context (quantized to window boundaries), so the run is
	// deterministic for any shard count > 1 at the same seed.
	Shards int
	// TransportHostsPer, when > 0, lays the sharded Stardust transport
	// over the fabric with that many hosts per FA, driven by a permutation
	// of long-running TCP flows instead of raw cell injectors, and scrapes
	// its counters at the window barrier (TransportMonitor). Forces the
	// sharded engine (Shards floors at 1).
	TransportHostsPer int
	// Telem, when > 0, records the run as a durable STREC1 telemetry
	// stream: one window per Telem of simulated time (rounded up to whole
	// lookahead windows on the sharded engine), scraped in barrier
	// context, buffered in memory for download, and fed to the online
	// analyzer pipeline.
	Telem sim.Time
	// TelemCap caps the in-memory stream buffer (0 means 64 MiB). When
	// the cap is hit the stream stops growing and the recorder latches
	// ErrStreamFull; the run itself is unaffected.
	TelemCap int
	// Controller configures the attached management plane.
	Controller Config
}

func (c FabricRunConfig) withDefaults() FabricRunConfig {
	if c.K == 0 {
		c.K = 4
	}
	if c.Load <= 0 {
		c.Load = 0.3
	}
	if c.CellBytes <= 0 {
		c.CellBytes = 512
	}
	if c.HealAfter <= 0 {
		c.HealAfter = 5 * sim.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// FabricRun is a continuously running fabric under management: the
// simulator, the fabric, its controller, a background traffic generator
// and the chaos schedule. The daemon advances it in steps from a single
// goroutine; Advance serializes callers.
type FabricRun struct {
	Cfg   FabricRunConfig
	Sim   *sim.Simulator
	Fab   fabric.Fabric
	Ctl   *Controller
	Eng   *parsim.Engine             // non-nil when the run is sharded
	Net   *netsim.ShardedStardustNet // non-nil when the transport overlay is on
	Trans *TransportMonitor          // barrier-scraped transport telemetry

	// Telemetry pipeline (all nil/zero unless Cfg.Telem > 0): the STREC1
	// recorder, the capped in-memory stream it writes, the live analyzer
	// findings, and the per-FA delivery heatmap.
	Rec      *telemetry.Recorder
	TelemBuf *telemetry.Buffer
	Findings *telemetry.FindingLog
	Heat     *telemetry.FAHeatmap

	mu  sync.Mutex
	rng *rand.Rand
}

// faSink counts per-FA deliveries for the telemetry stream. Installed
// with SetEgress it runs pinned to its FA's shard, so no locking.
type faSink struct {
	cells, bytes uint64
}

// Receive implements netsim.Handler.
func (s *faSink) Receive(c *netsim.Packet) {
	s.cells++
	s.bytes += uint64(c.Size)
	c.Release()
}

// NewFabricRun builds the fabric, attaches the controller, and schedules
// traffic and chaos. Nothing runs until Advance is called.
func NewFabricRun(cfg FabricRunConfig) (*FabricRun, error) {
	cfg = cfg.withDefaults()
	g, err := topo.ByName(cfg.Topo, cfg.K)
	if err != nil {
		return nil, err
	}
	if _, isClos := g.(*topo.Clos); !isClos && cfg.TransportHostsPer > 0 {
		return nil, fmt.Errorf("mgmt: the transport overlay runs on the clos fabric only (topology %s)", g.Spec())
	}
	fcfg := fabric.DefaultConfig(netsim.Bps(10e9), sim.Microsecond, cfg.Seed)
	if cfg.TransportHostsPer > 0 {
		// The transport's credit schedulers run 3% over the host rate, so
		// the fabric needs rate headroom over the edge (§6.2 uses 1.05) or
		// credit bursts slowly flood the trunks — same margin the htsim
		// testbed and benchmarks give their fabrics.
		fcfg.LinkRate = netsim.Bps(float64(fcfg.LinkRate) * 1.05)
	}

	var (
		s   *sim.Simulator
		fab fabric.Fabric
		eng *parsim.Engine
	)
	if cfg.Shards > 1 || cfg.TransportHostsPer > 0 {
		// The transport overlay always runs on the engine (its barrier is
		// what makes the scrape race-free), even at one shard.
		shards := cfg.Shards
		if shards < 1 {
			shards = 1
		}
		eng = parsim.New(parsim.Config{Shards: shards, Lookahead: fcfg.LinkDelay})
		if fab, err = fabric.NewShardedFabric(eng, fcfg, g); err != nil {
			return nil, err
		}
		s = fab.Simulator()
	} else {
		s = sim.New()
		if fab, err = fabric.NewFabric(s, fcfg, g); err != nil {
			return nil, err
		}
	}
	r := &FabricRun{
		Cfg: cfg,
		Sim: s,
		Fab: fab,
		Eng: eng,
		rng: rand.New(rand.NewSource(cfg.Seed ^ 0x51d)),
	}
	if eng != nil {
		r.Ctl = AttachSharded(fab, cfg.Controller)
	} else {
		r.Ctl = Attach(fab, cfg.Controller)
	}
	if cfg.TransportHostsPer > 0 {
		// The transport overlay is the load source: TCP flows over the
		// sharded Stardust substrate instead of raw cell injectors.
		if err := r.buildTransport(cfg.TransportHostsPer); err != nil {
			return nil, err
		}
	} else {
		// Per-FA pacing: each edge device offers Load×(its uplink
		// capacity), spread over rotating destinations, as a
		// self-rescheduling injection. Uplink counts are per device (uniform
		// on a Clos, not necessarily elsewhere).
		uplinks := topo.EdgeUplinkDirs(g)
		numFA := g.NumEdge()
		for fa := 0; fa < numFA; fa++ {
			perFA := cfg.Load * float64(len(uplinks[fa])) * float64(fcfg.LinkRate)
			gap := sim.Time(float64(cfg.CellBytes*8) / perFA * float64(sim.Second))
			if gap < sim.Nanosecond {
				gap = sim.Nanosecond
			}
			// Stagger starts so FAs do not inject in lockstep. The injector
			// lives on its FA's shard (sharded mode) or the solo loop.
			fab.NewInjector(fa, gap, cfg.CellBytes, 0, -1).Start(sim.Time(fa) * gap / sim.Time(numFA))
		}
	}
	if cfg.FailEvery > 0 {
		if eng != nil {
			// Chaos runs in barrier context (link state spans shards);
			// window quantization keeps it deterministic per shard count.
			next := cfg.FailEvery
			eng.OnBarrier(func(now sim.Time) {
				for now >= next {
					r.chaosStep()
					next += cfg.FailEvery
				}
			})
		} else {
			var chaos func()
			chaos = func() {
				r.chaosStep()
				s.After(cfg.FailEvery, chaos)
			}
			s.After(cfg.FailEvery, chaos)
		}
	}
	if cfg.Telem > 0 {
		if err := r.buildTelemetry(g); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// buildTelemetry wires the STREC1 recorder over the live fabric: a
// capped in-memory stream buffer (the download endpoint serves it), the
// scrape attached in barrier context (sharded) or as a periodic event
// (solo), and the default online analyzer pipeline feeding the findings
// log the NDJSON tail endpoint reads.
func (r *FabricRun) buildTelemetry(g topo.Graph) error {
	every := r.Cfg.Telem
	if r.Eng != nil {
		// Scrape instants must land exactly on window barriers so the
		// captured state is quiescent and shard-count independent.
		look := r.Eng.Lookahead()
		every = (every + look - 1) / look * look
	}
	cl, isClos := g.(*topo.Clos)
	hdr := telemetry.StreamHeader{
		Format:   telemetry.Format,
		Dirs:     2 * r.Fab.NumLinks(),
		Topo:     g.Spec(),
		Seed:     r.Cfg.Seed,
		ScrapePs: every,
	}
	if isClos {
		hdr.K = r.Cfg.K // legacy shorthand, kept for older stream readers
	}
	var sinks telemetry.SinkFunc
	if r.Net == nil {
		// Raw-cell load: install per-FA delivery sinks so the stream
		// carries the per-FA delivery series the heatmap renders.
		fas := make([]*faSink, g.NumEdge())
		for fa := range fas {
			fas[fa] = &faSink{}
			r.Fab.SetEgress(fa, fas[fa])
		}
		hdr.FAs = g.NumEdge()
		sinks = func(fa int) (uint64, uint64) { return fas[fa].cells, fas[fa].bytes }
	} else {
		// The transport overlay owns the egress endpoints, so the stream
		// carries link series only. Zero the topology identifiers too: they
		// promise the full shape including the FA series (MetaFromHeader
		// checks the dimensions).
		hdr.K, hdr.Topo = 0, ""
	}
	r.TelemBuf = telemetry.NewBuffer(r.Cfg.TelemCap)
	w, err := telemetry.NewWriter(r.TelemBuf, hdr)
	if err != nil {
		return err
	}
	r.Rec = telemetry.NewRecorder(w, r.Fab, sinks, every)
	stages := telemetry.DefaultAnalyzers()
	for _, a := range stages {
		if h, ok := a.(*telemetry.FAHeatmap); ok {
			r.Heat = h
		}
	}
	meta := telemetry.MetaForGraph(g)
	if isClos {
		meta = telemetry.MetaFor(cl) // legacy "FA3->FE11" direction labels
	}
	r.Findings = r.Rec.Observe(meta, stages...)
	if r.Eng != nil {
		r.Rec.AttachEngine(r.Eng)
	} else {
		r.Rec.AttachSim(r.Sim)
	}
	return nil
}

// chaosStep fails one random currently-up link and schedules its
// recovery. Overlapping failures may isolate an FA outright when the
// chaos period is short relative to HealAfter — deliberately so: that is
// exactly the condition the detector's reachability-hole anomaly exists
// to surface.
func (r *FabricRun) chaosStep() {
	n := r.Fab.NumLinks()
	pick := -1
	for try := 0; try < 8; try++ {
		i := r.rng.Intn(n)
		if r.Fab.LinkUp(i) {
			pick = i
			break
		}
	}
	if pick < 0 {
		return
	}
	r.Fab.FailLink(pick)
	i := pick
	if r.Eng != nil {
		// Heal in barrier context too: RestoreLink touches both endpoint
		// shards.
		r.Eng.At(r.Eng.Now()+r.Cfg.HealAfter, func() { r.Fab.RestoreLink(i) })
	} else {
		r.Sim.After(r.Cfg.HealAfter, func() { r.Fab.RestoreLink(i) })
	}
}

// Advance runs the simulation d further. It serializes concurrent
// callers, so the daemon's pacing goroutine and tests can share one run.
func (r *FabricRun) Advance(d sim.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.Eng != nil {
		r.Eng.Run(r.Eng.Now() + d)
		return
	}
	r.Sim.RunUntil(r.Sim.Now() + d)
}

// String describes the run for logs.
func (r *FabricRun) String() string {
	g := r.Fab.Graph()
	if t, ok := g.(*topo.Clos); ok {
		return fmt.Sprintf("fabric K=%d: %d FAs, %d FE1s, %d FE2s, %d links, %.0f%% load",
			r.Cfg.K, t.NumFA, t.NumFE1, t.NumFE2, len(t.Links), 100*r.Cfg.Load)
	}
	return fmt.Sprintf("fabric %s: %d devices (%d edge), %d links, %.0f%% load",
		g.Spec(), g.NumNodes(), g.NumEdge(), r.Fab.NumLinks(), 100*r.Cfg.Load)
}
