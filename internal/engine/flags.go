package engine

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"

	"stardust/internal/distsim"
)

// Flags bundles the engine options every cmd binary shares. Bind them
// onto a FlagSet with AddFlags, then hand the parsed value to Main.
type Flags struct {
	Workers    int
	Shards     int
	Topo       string
	Format     string
	Seed       int64
	List       bool
	Timings    bool
	CPUProfile string
	MemProfile string
	// Distributed execution (see internal/distsim): Peers>0 makes
	// dist-capable scenarios serve as coordinator on Listen and wait for
	// that many peer processes; Join turns this process into a peer of the
	// coordinator at the given address and runs no scenarios of its own.
	Peers  int
	Listen string
	Join   string
}

// AddFlags registers the common engine flags on fs and returns the
// destination struct.
func AddFlags(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.IntVar(&f.Workers, "workers", 0, "parallel scenario instances (0 = all CPUs)")
	fs.IntVar(&f.Shards, "shards", 1, "event-loop shards per instance for sharded scenarios (same seed => byte-identical output at any count)")
	fs.StringVar(&f.Topo, "topo", "", "fabric topology for topology-aware scenarios: clos (default), sshuffle, star, or a full topo spec string")
	fs.StringVar(&f.Format, "format", "text", "output format: text, json, csv")
	fs.Int64Var(&f.Seed, "seed", 1, "base RNG seed (same seed => byte-identical output)")
	fs.BoolVar(&f.List, "list", false, "list registered scenarios and exit")
	fs.BoolVar(&f.Timings, "timings", false, "print a wall-clock summary to stderr")
	fs.StringVar(&f.CPUProfile, "cpuprofile", "", "write a CPU profile of the run to this file (inspect with go tool pprof)")
	fs.StringVar(&f.MemProfile, "memprofile", "", "write a post-run heap profile to this file (inspect with go tool pprof)")
	fs.IntVar(&f.Peers, "peers", 0, "distributed run: serve as coordinator for this many peer processes (0 = in-process shards)")
	fs.StringVar(&f.Listen, "listen", "127.0.0.1:0", "distributed run: coordinator listen address (with -peers)")
	fs.StringVar(&f.Join, "join", "", "distributed run: join the coordinator at this address as a peer and exit")
	return f
}

// Options converts the parsed flags into runner options writing to
// stdout (results) and stderr (timings).
func (f *Flags) Options() Options {
	o := Options{
		Workers:    f.Workers,
		Shards:     f.Shards,
		Topo:       f.Topo,
		Seed:       f.Seed,
		Format:     f.Format,
		Out:        os.Stdout,
		DistPeers:  f.Peers,
		DistListen: f.Listen,
	}
	if f.Timings {
		o.Timing = os.Stderr
	}
	return o
}

// WriteRegistry prints the scenario registry: name, description, and one
// line per accepted parameter with its default and registered doc string
// (the same metadata the stardustd API serves as JSON).
func WriteRegistry(w io.Writer) {
	for _, sc := range List() {
		fmt.Fprintf(w, "%-20s %s\n", sc.Name, sc.Desc)
		for _, d := range sc.ParamDocs() {
			kv := d.Key + "=" + d.Default
			if d.Desc != "" {
				fmt.Fprintf(w, "    %-24s %s\n", kv, d.Desc)
			} else {
				fmt.Fprintf(w, "    %s\n", kv)
			}
		}
	}
}

// fatal prints err and exits — only used after profiles are flushed.
func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

// Main is the shared entry point of the cmd binaries: it honors -list,
// handles the distributed peer modes, wraps the run in the requested
// CPU/heap profiles, runs the jobs with the common options, and exits
// non-zero on failure. Profiles are stopped and flushed before any exit
// path, including a failed run, so a profile of a crashing sweep is
// still readable.
//
// Callers must invoke distsim.MaybeRunPeer() at the very top of main(),
// before flag parsing — a forked peer child (devnet, fabric/distscale)
// re-executes the binary and must branch into the peer loop first.
func Main(f *Flags, jobs []Job) {
	if f.List {
		WriteRegistry(os.Stdout)
		return
	}
	if f.Join != "" {
		// Peer mode: this process owns no scenarios; it serves shards for
		// the coordinator at -join and exits when the run completes.
		if err := distsim.RunPeer(f.Join); err != nil {
			fatal(err)
		}
		return
	}
	var cpuFile *os.File
	if f.CPUProfile != "" {
		fp, err := os.Create(f.CPUProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(fp); err != nil {
			fp.Close()
			fatal(err)
		}
		cpuFile = fp
	}
	_, runErr := Run(f.Options(), jobs)
	if cpuFile != nil {
		pprof.StopCPUProfile()
		if err := cpuFile.Close(); err != nil {
			fatal(err)
		}
	}
	if f.MemProfile != "" {
		fp, err := os.Create(f.MemProfile)
		if err != nil {
			fatal(err)
		}
		runtime.GC() // settle the pools so the profile shows retained state
		if err := pprof.WriteHeapProfile(fp); err != nil {
			fp.Close()
			fatal(err)
		}
		if err := fp.Close(); err != nil {
			fatal(err)
		}
	}
	if runErr != nil {
		fatal(runErr)
	}
}
