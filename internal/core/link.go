package core

import (
	"stardust/internal/cell"
	"stardust/internal/reach"
	"stardust/internal/sim"
)

// link is one direction of a serial link: a serializer at the sender plus
// propagation delay. Each wire() call creates two links (one per
// direction) and cross-references them.
type link struct {
	net    *Network
	down   bool // failed (cut fiber / silenced device)
	faulty bool // error rate over threshold: advertised as faulty (§5.10)

	// Sender side.
	psPerByte int64
	busyUntil sim.Time

	// Receiver side.
	deliverCell func(*cell.Cell)
	deliverMsg  func(any)

	peer *link // reverse direction
}

func newLink(n *Network, bps float64) *link {
	return &link{net: n, psPerByte: int64(8e12 / bps)}
}

func (l *link) peerLink() *link { return l.peer }

func (l *link) fail()    { l.down = true }
func (l *link) restore() { l.down = false }

// sendCell serializes a data cell onto the wire; delivery happens after
// store-and-forward serialization plus propagation. Returns the time the
// sender's serializer frees up.
func (l *link) sendCell(c *cell.Cell) sim.Time {
	if l.down {
		return l.net.Sim.Now() // silently lost; reachability will heal
	}
	now := l.net.Sim.Now()
	start := l.busyUntil
	if start < now {
		start = now
	}
	txDone := start + sim.Time(int64(c.TotalSize())*l.psPerByte)
	l.busyUntil = txDone
	arrive := txDone + l.net.Cfg.LinkDelay
	dl := l // capture
	l.net.Sim.At(arrive, func() {
		if dl.down {
			return
		}
		dl.deliverCell(c)
	})
	return txDone
}

// queueDepthTime returns how much serialization backlog is pending on the
// sender, in time units.
func (l *link) backlog() sim.Time {
	now := l.net.Sim.Now()
	if l.busyUntil <= now {
		return 0
	}
	return l.busyUntil - now
}

// sendMsg delivers a control message (credit request, credit, reachability
// message) after propagation delay only; control traffic is delay-modelled
// (see package comment).
func (l *link) sendMsg(m any) {
	if l.down {
		return
	}
	arrive := l.net.Sim.Now() + l.net.Cfg.LinkDelay + sim.Time(int64(reach.MessageBytes)*l.psPerByte)
	dl := l
	l.net.Sim.At(arrive, func() {
		if dl.down {
			return
		}
		dl.deliverMsg(m)
	})
}

// wire connects two endpoints with a full-duplex link.
func wire(n *Network, a, b endpointRef) {
	ab := newLink(n, n.Cfg.LinkBps)
	ba := newLink(n, n.Cfg.LinkBps)
	ab.peer, ba.peer = ba, ab
	attach(n, a, ab, ba) // a transmits on ab, receives on ba
	attach(n, b, ba, ab)
}

// attach registers tx as the endpoint's outgoing link at its port and
// points rx's delivery functions at the endpoint.
func attach(n *Network, ep endpointRef, tx, rx *link) {
	if ep.fa != nil {
		fa, port := ep.fa, ep.port
		fa.uplinks[port] = tx
		rx.deliverCell = func(c *cell.Cell) { fa.onFabricCell(port, c) }
		rx.deliverMsg = func(m any) { fa.onCtrl(port, m) }
		return
	}
	fe, port := ep.fe, ep.port
	fe.links[port] = tx
	rx.deliverCell = func(c *cell.Cell) { fe.onCell(port, c) }
	rx.deliverMsg = func(m any) { fe.onCtrl(port, m) }
}

// Control-plane message types exchanged between devices.

// creditRequest is a VOQ state report toward the destination FA's egress
// scheduler (§3.3: non-empty VOQs request permission to send).
type creditRequest struct {
	SrcFA   uint16
	DstFA   uint16
	DstPort uint8
	TC      uint8
	Backlog int64 // current queued bytes; 0 withdraws
}

// creditGrant entitles a VOQ to release Bytes toward (DstFA, DstPort).
type creditGrant struct {
	SrcFA   uint16 // the requester being credited
	DstFA   uint16
	DstPort uint8
	TC      uint8
	Bytes   int64
}

// reachMsg wraps a reachability advertisement chunk (§5.8).
type reachMsg struct {
	msg reach.Message
}
