// Package workload provides the traffic generators used across the
// evaluation: the packet-size mixes of the production traces the paper
// references [74] (Fig 8b), the Web flow-size distribution (Fig 10b), the
// permutation traffic matrix (Fig 10a) and the incast pattern (Fig 10c).
//
// The production traces themselves are proprietary; the distributions here
// are synthetic equivalents matching the published shapes (see DESIGN.md's
// substitution table): Hadoop traffic is dominated by MTU-size packets,
// Web traffic by small packets, and Cache/DB traffic is bimodal.
package workload

import (
	"math/rand"

	"stardust/internal/stats"
)

// TraceName identifies one of the Fig 8(b) packet-size mixes.
type TraceName string

// The three production workloads of Fig 8(b).
const (
	TraceDB     TraceName = "DB"
	TraceWeb    TraceName = "Web"
	TraceHadoop TraceName = "Hadoop"
)

// PacketMix returns the packet-size distribution for a trace: values are
// packet sizes in bytes, weights are relative frequencies.
func PacketMix(name TraceName) (sizes []int, weights []float64) {
	switch name {
	case TraceDB:
		// Cache/DB: bimodal — small requests/ACKs and medium objects
		// (median well under MTU).
		return []int{64, 128, 350, 575, 1460}, []float64{0.30, 0.10, 0.25, 0.20, 0.15}
	case TraceWeb:
		// Web: dominated by small packets; a quarter full-size.
		return []int{64, 128, 256, 512, 1460}, []float64{0.45, 0.20, 0.12, 0.08, 0.15}
	case TraceHadoop:
		// Hadoop: bulk transfer, overwhelmingly MTU-size.
		return []int{64, 256, 512, 1460}, []float64{0.08, 0.05, 0.07, 0.80}
	}
	panic("workload: unknown trace " + string(name))
}

// Traces lists the Fig 8(b) workloads in the paper's order.
var Traces = []TraceName{TraceDB, TraceWeb, TraceHadoop}

// PacketSampler draws packet sizes from a trace mix.
func PacketSampler(name TraceName) *stats.Discrete {
	sizes, weights := PacketMix(name)
	return stats.NewDiscrete(sizes, weights)
}

// WebFlowSizes is the Fig 10(b) flow-size distribution: the Facebook Web
// workload's published CDF shape — most flows are a few kilobytes with a
// heavy tail to ~10MB.
func WebFlowSizes() *stats.EmpiricalCDF {
	return stats.NewEmpiricalCDF(
		[]float64{300, 1e3, 2e3, 5e3, 1e4, 3e4, 1e5, 3e5, 1e6, 1e7},
		[]float64{0.00, 0.15, 0.30, 0.50, 0.65, 0.80, 0.90, 0.95, 0.98, 1.00},
	)
}

// Permutation builds the Fig 10(a) traffic matrix: every node sends to
// exactly one other node and receives from exactly one (a derangement).
func Permutation(rng *rand.Rand, nodes int) []int {
	return stats.Permutation(rng, nodes)
}

// Incast describes one Fig 10(c) run: a frontend fans a request out to
// Backends servers, each of which replies with ResponseBytes.
type Incast struct {
	Frontend      int
	Backends      []int
	ResponseBytes int64
}

// NewIncast picks the frontend and n distinct backends among the nodes.
func NewIncast(rng *rand.Rand, nodes, n int, responseBytes int64) Incast {
	if n >= nodes {
		n = nodes - 1
	}
	perm := rng.Perm(nodes)
	return Incast{
		Frontend:      perm[0],
		Backends:      append([]int(nil), perm[1:n+1]...),
		ResponseBytes: responseBytes,
	}
}

// Flow is one source->destination demand of a traffic matrix.
type Flow struct {
	Src, Dst int
}

// Permutation flows, hotspot flows and all-to-all flows are the scenario
// diversity axis of the evaluation: permutation fully loads the fabric
// with zero fan-in, hotspot concentrates fan-in on a few egress ports
// (the pattern that separates a scheduled fabric from ECMP), and
// all-to-all exercises every path simultaneously.

// Hotspot builds a hotspot matrix over nodes: every node sends one
// long-running flow; a hotFraction of the senders redirect theirs at one
// of `hotspots` randomly chosen hot destinations (egress fan-in), the
// rest keep a permutation pattern. Returns the flows and the hot nodes.
func Hotspot(rng *rand.Rand, nodes, hotspots int, hotFraction float64) ([]Flow, []int) {
	if hotspots < 1 {
		hotspots = 1
	}
	if hotspots >= nodes {
		hotspots = nodes - 1
	}
	perm := stats.Permutation(rng, nodes)
	hot := append([]int(nil), rng.Perm(nodes)[:hotspots]...)
	flows := make([]Flow, 0, nodes)
	for src := 0; src < nodes; src++ {
		dst := perm[src]
		if rng.Float64() < hotFraction {
			if h := hot[rng.Intn(len(hot))]; h != src {
				dst = h
			}
		}
		flows = append(flows, Flow{Src: src, Dst: dst})
	}
	return flows, hot
}

// AllToAll builds the complete matrix: every ordered pair of distinct
// nodes exchanges one flow (n*(n-1) flows).
func AllToAll(nodes int) []Flow {
	flows := make([]Flow, 0, nodes*(nodes-1))
	for src := 0; src < nodes; src++ {
		for dst := 0; dst < nodes; dst++ {
			if dst != src {
				flows = append(flows, Flow{Src: src, Dst: dst})
			}
		}
	}
	return flows
}

// IncastMatrix builds the Fig 10(c) fan-in as a flow list: fanin distinct
// backends each send one flow to a randomly chosen frontend. Returns the
// flows and the frontend.
func IncastMatrix(rng *rand.Rand, nodes, fanin int) ([]Flow, int) {
	inc := NewIncast(rng, nodes, fanin, 0)
	flows := make([]Flow, 0, len(inc.Backends))
	for _, b := range inc.Backends {
		flows = append(flows, Flow{Src: b, Dst: inc.Frontend})
	}
	return flows, inc.Frontend
}

// FlowArrivals generates Poisson flow inter-arrival times with the given
// mean rate (flows/second), returning seconds until the next arrival.
func FlowArrivals(rng *rand.Rand, ratePerSec float64) func() float64 {
	mean := 1 / ratePerSec
	return func() float64 { return stats.Exp(rng, mean) }
}

// MTU is the conventional Ethernet payload ceiling used by the htsim
// experiments (§6.3 uses 9000B jumbo frames for the TCP variants and 512B
// cells for Stardust).
const MTU = 1500

// SplitFlow chops a flow of size bytes into packets of at most mtu bytes;
// the final packet carries the remainder.
func SplitFlow(bytes int64, mtu int) []int {
	if bytes <= 0 {
		return nil
	}
	n := int((bytes + int64(mtu) - 1) / int64(mtu))
	out := make([]int, n)
	for i := 0; i < n-1; i++ {
		out[i] = mtu
	}
	last := int(bytes - int64(mtu)*int64(n-1))
	out[n-1] = last
	return out
}
