package queueing

import (
	"math"
	"math/rand"
	"testing"
)

func TestNewMD1Validation(t *testing.T) {
	for _, rho := range []float64{0, -0.1, 1, 1.5} {
		if _, err := NewMD1(rho); err == nil {
			t.Fatalf("rho=%v should be rejected", rho)
		}
	}
	if _, err := NewMD1(0.5); err != nil {
		t.Fatal(err)
	}
}

func TestQueuePMFIsDistribution(t *testing.T) {
	for _, rho := range []float64{0.3, 0.66, 0.8, 0.92, 0.95} {
		m, _ := NewMD1(rho)
		pmf := m.QueuePMF(400)
		var sum float64
		for _, p := range pmf {
			if p < 0 || p > 1 {
				t.Fatalf("rho=%v: invalid probability %v", rho, p)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Fatalf("rho=%v: PMF sums to %v", rho, sum)
		}
		if math.Abs(pmf[0]-(1-rho)) > 1e-12 {
			t.Fatalf("rho=%v: P(0)=%v, want %v", rho, pmf[0], 1-rho)
		}
	}
}

func TestMeanMatchesPollaczekKhinchine(t *testing.T) {
	for _, rho := range []float64{0.3, 0.66, 0.9} {
		m, _ := NewMD1(rho)
		pmf := m.QueuePMF(2000)
		var mean float64
		for n, p := range pmf {
			mean += float64(n) * p
		}
		want := m.MeanQueue()
		if math.Abs(mean-want) > 1e-3*want+1e-6 {
			t.Fatalf("rho=%v: PMF mean %v, P-K %v", rho, mean, want)
		}
	}
}

func TestMeanWait(t *testing.T) {
	m, _ := NewMD1(0.8)
	// Little's law: E[Q] = rho + lambda*W  (service excluded from W).
	if got, want := m.MeanQueue(), m.Rho+m.Rho*m.MeanWait(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Little's law violated: %v vs %v", got, want)
	}
}

func TestCCDFMonotone(t *testing.T) {
	m, _ := NewMD1(0.92)
	ccdf := m.QueueCCDF(200)
	if math.Abs(ccdf[0]-1) > 1e-9 {
		t.Fatalf("CCDF[0] = %v, want 1", ccdf[0])
	}
	for i := 1; i < len(ccdf); i++ {
		if ccdf[i] > ccdf[i-1]+1e-12 {
			t.Fatalf("CCDF not monotone at %d", i)
		}
	}
}

// The queue-size tail must decay exponentially with rate close to
// TailDecayRate, and the paper's fs^-2N approximation must upper-bound-ish
// track it (same order of magnitude for moderate utilization).
func TestTailDecay(t *testing.T) {
	m, _ := NewMD1(0.8)
	ccdf := m.QueueCCDF(60)
	r := m.TailDecayRate()
	if r <= 0 || r >= 1 {
		t.Fatalf("decay rate %v out of range", r)
	}
	// Empirical per-step decay in the tail should approach r. Stay in a
	// region where the PMF is far above float cancellation noise.
	got := ccdf[35] / ccdf[34]
	if math.Abs(got-r) > 0.02 {
		t.Fatalf("empirical decay %v, analytic %v", got, r)
	}
	// Paper approximation: r ~ rho^2.
	if math.Abs(r-0.8*0.8) > 0.12 {
		t.Fatalf("decay rate %v too far from paper's rho^2=%v", r, 0.64)
	}
}

func TestPaperTailBound(t *testing.T) {
	// fs = 1.25 (80% utilization): bound at N=5 is 0.8^10.
	got := PaperTailBound(1.25, 5)
	want := math.Pow(0.8, 10)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("got %v want %v", got, want)
	}
}

// Monte-Carlo validation: simulate the discrete M/D/1 (Poisson arrivals per
// slot, one departure per slot) and compare the queue distribution with the
// analytic PMF.
func TestMD1AgainstSimulation(t *testing.T) {
	rho := 0.8
	m, _ := NewMD1(rho)
	pmf := m.QueuePMF(200)

	rng := rand.New(rand.NewSource(1234))
	q := 0
	counts := make([]int, 201)
	const slots = 2_000_000
	for i := 0; i < slots; i++ {
		// Serve-then-arrive slot ordering: a cell arriving during slot i
		// can start transmission no earlier than slot i+1 (store-and-
		// forward of the cell). The stationary distribution of this chain
		// equals the continuous-time M/D/1 system-size distribution.
		if q > 0 {
			q--
		}
		q += poissonDraw(rng, rho)
		if q <= 200 {
			counts[q]++
		}
	}
	for n := 0; n <= 20; n++ {
		got := float64(counts[n]) / slots
		want := pmf[n]
		if want > 1e-3 && math.Abs(got-want) > 0.15*want+0.002 {
			t.Fatalf("P(Q=%d): sim %v, analytic %v", n, got, want)
		}
	}
}

func poissonDraw(rng *rand.Rand, mean float64) int {
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}
