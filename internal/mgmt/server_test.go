package mgmt

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"stardust/internal/engine"
	"stardust/internal/sim"
)

func init() {
	// A tiny deterministic scenario for daemon tests: fast, seeded, with
	// a sweep so progress has multiple instances to report.
	engine.Register(engine.Scenario{
		Name:     "mgmttest/echo",
		Desc:     "daemon test scenario",
		Defaults: engine.Params{"x": "1", "points": "2"},
		Docs:     map[string]string{"x": "the echoed value", "points": "sweep width"},
		Variants: func(p engine.Params) []engine.Params {
			n := p.Int("points", 1)
			out := make([]engine.Params, n)
			for i := range out {
				out[i] = p.With("point", fmt.Sprint(i))
			}
			return out
		},
		Run: func(c engine.Context) (engine.Result, error) {
			var r engine.Result
			r.Add("x", float64(c.Params.Int("x", 0)), "")
			r.Add("point", float64(c.Params.Int("point", 0)), "")
			r.Add("seed", float64(c.Seed), "")
			r.Text = fmt.Sprintf("x=%s point=%s seed=%d\n", c.Params["x"], c.Params["point"], c.Seed)
			return r, nil
		},
	})
	engine.Register(engine.Scenario{
		Name: "mgmttest/fail",
		Desc: "always fails",
		Run: func(c engine.Context) (engine.Result, error) {
			return engine.Result{}, fmt.Errorf("boom")
		},
	})
}

func newTestDaemon(t *testing.T, withFabric bool) (*httptest.Server, *RunQueue, *FabricRun) {
	t.Helper()
	q := NewRunQueue(8, 2, 1)
	t.Cleanup(q.Shutdown)
	var fr *FabricRun
	if withFabric {
		var err error
		fr, err = NewFabricRun(FabricRunConfig{
			K: 4, Load: 0.2, FailEvery: 2 * sim.Millisecond, HealAfter: sim.Millisecond,
			Controller: Config{ScrapeEvery: 500 * sim.Microsecond},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	ts := httptest.NewServer(NewServer(q, fr))
	t.Cleanup(ts.Close)
	return ts, q, fr
}

func getJSON(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
	}
	return resp
}

func postJSON(t *testing.T, url string, body any, v any) *http.Response {
	t.Helper()
	blob, _ := json.Marshal(body)
	resp, err := http.Post(url, "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("POST %s: %v", url, err)
		}
	}
	return resp
}

func fetchResult(t *testing.T, ts *httptest.Server, q *RunQueue, id string) []byte {
	t.Helper()
	if j, ok := q.Wait(id, 10*time.Second); !ok || j.State != JobDone {
		t.Fatalf("job %s did not finish: %+v", id, j)
	}
	resp, err := http.Get(ts.URL + "/api/v1/runs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result status %d", resp.StatusCode)
	}
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// The acceptance test: the same scenario submitted twice concurrently
// over HTTP coalesces onto one job through the content-addressed cache,
// and both submissions observe byte-identical result bytes.
func TestConcurrentDuplicateSubmitServedFromCache(t *testing.T) {
	ts, q, _ := newTestDaemon(t, false)
	req := RunRequest{Scenario: "mgmttest/echo", Params: engine.Params{"x": "42", "points": "3"}, Seed: 7}

	var wg sync.WaitGroup
	jobs := make([]Job, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			postJSON(t, ts.URL+"/api/v1/runs", req, &jobs[i])
		}()
	}
	wg.Wait()

	if jobs[0].ID != jobs[1].ID {
		t.Fatalf("concurrent identical submissions got different jobs: %s vs %s", jobs[0].ID, jobs[1].ID)
	}
	if jobs[0].Cached == jobs[1].Cached {
		t.Fatalf("exactly one submission should be the cache hit: %v vs %v", jobs[0].Cached, jobs[1].Cached)
	}
	out1 := fetchResult(t, ts, q, jobs[0].ID)
	out2 := fetchResult(t, ts, q, jobs[1].ID)
	if !bytes.Equal(out1, out2) {
		t.Fatal("cached result bytes differ")
	}
	if len(out1) == 0 || !strings.Contains(string(out1), "mgmttest/echo") {
		t.Fatalf("result looks wrong: %q", out1)
	}
	if hits := q.Stats().CacheHits; hits != 1 {
		t.Fatalf("cache hits = %d, want 1", hits)
	}

	// A later identical submission hits the cache too — and its result is
	// still byte-identical.
	var again Job
	resp := postJSON(t, ts.URL+"/api/v1/runs", req, &again)
	if resp.StatusCode != http.StatusOK || !again.Cached || again.ID != jobs[0].ID {
		t.Fatalf("sequential duplicate not served from cache: %d %+v", resp.StatusCode, again)
	}
	if !bytes.Equal(fetchResult(t, ts, q, again.ID), out1) {
		t.Fatal("sequential duplicate bytes differ")
	}
	// A different seed is a different address.
	other := req
	other.Seed = 8
	var fresh Job
	postJSON(t, ts.URL+"/api/v1/runs", other, &fresh)
	if fresh.Cached || fresh.ID == jobs[0].ID {
		t.Fatalf("different seed coalesced: %+v", fresh)
	}
}

func TestSubmitValidationAndBoundedQueue(t *testing.T) {
	ts, _, _ := newTestDaemon(t, false)
	resp := postJSON(t, ts.URL+"/api/v1/runs", RunRequest{Scenario: "no/such"}, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown scenario gave %d", resp.StatusCode)
	}

	// Saturate a tiny queue directly (no HTTP, to control capacity).
	q2 := NewRunQueue(1, 1, 1)
	defer q2.Shutdown()
	// Occupy the single worker and the single queue slot with distinct
	// requests (different seeds -> different cache keys).
	for i := 0; ; i++ {
		_, _, err := q2.Submit(RunRequest{Scenario: "mgmttest/echo", Seed: int64(i + 100)}, "test")
		if errors.Is(err, ErrQueueFull) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if i > 16 {
			t.Fatal("queue never filled")
		}
	}
	if q2.Stats().Rejected == 0 {
		t.Fatal("rejections not counted")
	}
}

func TestFailedJobDoesNotPoisonCache(t *testing.T) {
	_, q, _ := newTestDaemon(t, false)
	j, cached, err := q.Submit(RunRequest{Scenario: "mgmttest/fail"}, "test")
	if err != nil || cached {
		t.Fatalf("submit: %v cached=%v", err, cached)
	}
	done, _ := q.Wait(j.ID, 10*time.Second)
	if done.State != JobFailed || done.Error == "" {
		t.Fatalf("want failed state with error, got %+v", done)
	}
	// Resubmitting after failure re-runs instead of serving the failure.
	j2, cached, err := q.Submit(RunRequest{Scenario: "mgmttest/fail"}, "test")
	if err != nil || cached || j2.ID == j.ID {
		t.Fatalf("failed job pinned the cache: %v cached=%v id=%s", err, cached, j2.ID)
	}
}

func TestScenarioMetadataEndpoint(t *testing.T) {
	ts, _, _ := newTestDaemon(t, false)
	var infos []scenarioInfo
	getJSON(t, ts.URL+"/api/v1/scenarios", &infos)
	byName := make(map[string]scenarioInfo)
	for _, in := range infos {
		byName[in.Name] = in
	}
	in, ok := byName["mgmttest/echo"]
	if !ok {
		t.Fatal("registry endpoint misses mgmttest/echo")
	}
	var sawDoc bool
	for _, p := range in.Params {
		if p.Key == "x" && p.Desc == "the echoed value" && p.Default == "1" {
			sawDoc = true
		}
	}
	if !sawDoc {
		t.Fatalf("param docs not served: %+v", in.Params)
	}
	if _, ok := byName["htsim/permutation"]; len(byName) > 2 && !ok {
		t.Log("note: full scenario registry not linked in this test binary")
	}
}

func TestRunProgressStream(t *testing.T) {
	ts, _, _ := newTestDaemon(t, false)
	var job Job
	postJSON(t, ts.URL+"/api/v1/runs", RunRequest{Scenario: "mgmttest/echo", Seed: 11}, &job)
	resp, err := http.Get(ts.URL + "/api/v1/runs/" + job.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(resp.Body) // stream ends when the job does
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSpace(blob), []byte("\n"))
	if len(lines) < 3 { // running + >=1 instance + done + final snapshot
		t.Fatalf("stream too short: %s", blob)
	}
	var final Job
	if err := json.Unmarshal(lines[len(lines)-1], &final); err != nil {
		t.Fatalf("last stream line is not the job snapshot: %v", err)
	}
	if final.State != JobDone {
		t.Fatalf("stream ended with state %s", final.State)
	}
}

// A live fabric run must expose telemetry, and chaos failures/recoveries
// must show up both on /metrics and on the event API.
func TestFabricEndpointsAndMetrics(t *testing.T) {
	ts, _, fr := newTestDaemon(t, true)
	for i := 0; i < 10; i++ {
		fr.Advance(sim.Millisecond)
	}

	var tel []LinkTelemetry
	getJSON(t, ts.URL+"/api/v1/fabric/telemetry", &tel)
	if len(tel) == 0 {
		t.Fatal("no telemetry rows")
	}
	busy := 0
	for _, row := range tel {
		if row.Last.FwdBytes > 0 {
			busy++
		}
	}
	if busy == 0 {
		t.Fatal("live fabric shows no forwarded bytes")
	}

	var events struct {
		LastSeq uint64  `json:"last_seq"`
		Events  []Event `json:"events"`
	}
	getJSON(t, ts.URL+"/api/v1/fabric/events?since=0", &events)
	var sawDown, sawUp, sawReach bool
	var lastSeq uint64
	for _, e := range events.Events {
		if e.Seq <= lastSeq {
			t.Fatalf("event seq not strictly increasing: %d after %d", e.Seq, lastSeq)
		}
		lastSeq = e.Seq
		switch e.Kind {
		case EventLinkDown:
			sawDown = true
		case EventLinkUp:
			sawUp = true
		case EventReachUpdate:
			sawReach = true
		}
	}
	if !sawDown || !sawUp {
		t.Fatalf("chaos failure/recovery missing from event API (down=%v up=%v)", sawDown, sawUp)
	}
	_ = sawReach // FE1-FE2 chaos picks need no spine withdrawal; FA links publish one

	// Per-link series endpoint.
	var series struct {
		Series []Sample `json:"series"`
	}
	getJSON(t, ts.URL+"/api/v1/fabric/telemetry?link=0&dir=1", &series)
	if len(series.Series) < 2 {
		t.Fatalf("series endpoint returned %d samples", len(series.Series))
	}

	// Inventory endpoint.
	var info struct {
		Inventory Inventory   `json:"inventory"`
		Stats     FabricStats `json:"stats"`
	}
	getJSON(t, ts.URL+"/api/v1/fabric", &info)
	if len(info.Inventory.Devices) == 0 || len(info.Inventory.Links) == 0 {
		t.Fatal("inventory endpoint empty")
	}
	if info.Stats.Scrapes == 0 {
		t.Fatal("stats endpoint shows no scrapes")
	}

	// /metrics carries the failure/recovery counters with nonzero values.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	blob, _ := io.ReadAll(resp.Body)
	metrics := string(blob)
	for _, want := range []string{
		"stardust_fabric_cells_injected_total",
		"stardust_fabric_link_failures_total",
		"stardust_fabric_link_recoveries_total",
		"stardustd_runs_submitted_total",
		"stardust_mgmt_scrapes_total",
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("/metrics misses %s:\n%s", want, metrics)
		}
	}
	for _, line := range strings.Split(metrics, "\n") {
		if strings.HasPrefix(line, "stardust_fabric_link_failures_total ") {
			if strings.HasSuffix(line, " 0") {
				t.Fatalf("chaos ran but failure counter is zero: %q", line)
			}
		}
	}

	// Without a fabric run, the fabric API 404s cleanly.
	ts2, _, _ := newTestDaemon(t, false)
	if resp := getJSON(t, ts2.URL+"/api/v1/fabric", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("fabricless daemon served fabric API: %d", resp.StatusCode)
	}
}

func TestHealthz(t *testing.T) {
	ts, _, _ := newTestDaemon(t, false)
	var h map[string]any
	resp := getJSON(t, ts.URL+"/healthz", &h)
	if resp.StatusCode != http.StatusOK || h["status"] != "ok" {
		t.Fatalf("healthz: %d %v", resp.StatusCode, h)
	}
}

// Retention is bounded: finished jobs beyond the cap are evicted along
// with their cached results, while the bounded queue itself stays the
// only limit on live work.
func TestFinishedJobEviction(t *testing.T) {
	q := NewRunQueue(8, 1, 1)
	defer q.Shutdown()
	q.maxRetained = 3
	var ids []string
	for i := 0; i < 6; i++ {
		j, _, err := q.Submit(RunRequest{Scenario: "mgmttest/echo", Seed: int64(i + 1)}, "test")
		if err != nil {
			t.Fatal(err)
		}
		if done, _ := q.Wait(j.ID, 10*time.Second); done.State != JobDone {
			t.Fatalf("job %s: %+v", j.ID, done)
		}
		ids = append(ids, j.ID)
	}
	if _, ok := q.Get(ids[0]); ok {
		t.Fatal("oldest finished job survived eviction")
	}
	if _, ok := q.Get(ids[5]); !ok {
		t.Fatal("newest job evicted")
	}
	if got := len(q.List(0)); got > 3+1 { // cap + the in-flight slack
		t.Fatalf("retained %d jobs, cap 3", got)
	}
	// An evicted key re-runs instead of serving a dangling cache entry.
	j, cached, err := q.Submit(RunRequest{Scenario: "mgmttest/echo", Seed: 1}, "test")
	if err != nil || cached {
		t.Fatalf("evicted key still cached: %v %v", err, cached)
	}
	if done, _ := q.Wait(j.ID, 10*time.Second); done.State != JobDone {
		t.Fatalf("re-run failed: %+v", done)
	}
}
