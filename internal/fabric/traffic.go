package fabric

import (
	"stardust/internal/netsim"
	"stardust/internal/sim"
)

// Injector paces synthetic cells out of one Fabric Adapter toward
// rotating destinations — the shared traffic source of the parscale/
// parheal scenarios, the managed FabricRun, and the sharded cell-path
// benchmark. Everything it does is a function of (FA, instant) alone: it
// lives on its FA's shard and keeps its own rotation counter, so the
// offered traffic is identical at every shard count.
type Injector struct {
	net   *Net
	sm    *sim.Simulator
	fa    int
	numFA int
	gap   sim.Time
	cell  int
	stop  sim.Time // 0 = no time limit
	quota int      // < 0 = no cell limit
	n     int
	sent  uint64
}

// NewInjector builds an injector for FA fa pacing one cell of cellBytes
// every gap. Injection ends at time stop (0 = unbounded) or after quota
// cells (< 0 = unbounded), whichever comes first. Call Start to schedule
// the first cell.
func (n *Net) NewInjector(fa int, gap sim.Time, cellBytes int, stop sim.Time, quota int) *Injector {
	sm := n.Sim
	if n.eng != nil {
		sm = n.eng.Shard(n.assign.FA[fa]).Sim()
	}
	return &Injector{
		net: n, sm: sm, fa: fa, numFA: n.Topo.NumFA,
		gap: gap, cell: cellBytes, stop: stop, quota: quota,
	}
}

// Start schedules the first injection at absolute time at — stagger
// starts across FAs so they do not inject in lockstep.
func (j *Injector) Start(at sim.Time) { j.sm.AtAction(at, j, 0) }

// Sent returns the number of cells injected so far.
func (j *Injector) Sent() uint64 { return j.sent }

// Act implements sim.Action: inject one cell and reschedule.
func (j *Injector) Act(uint64) {
	if j.stop != 0 && j.sm.Now() >= j.stop {
		return
	}
	if j.quota == 0 {
		return
	}
	if j.quota > 0 {
		j.quota--
	}
	c := netsim.NewPacket()
	c.Size = j.cell
	j.n++
	dst := (j.fa + 1 + j.n%(j.numFA-1)) % j.numFA
	j.net.Inject(c, j.fa, dst)
	j.sent++
	j.sm.AfterAction(j.gap, j, 0)
}
