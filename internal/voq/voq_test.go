package voq

import (
	"math/rand"
	"testing"
	"testing/quick"

	"stardust/internal/cell"
)

func pkt(id uint64, size int) cell.PacketRef { return cell.PacketRef{ID: id, Size: size} }

func TestEnqueueActivation(t *testing.T) {
	m := NewManager(1 << 20)
	var activations []Key
	m.OnActivate = func(k Key, _ *Queue) { activations = append(activations, k) }
	k := Key{DstFA: 3, DstPort: 1, TC: 0}
	m.Enqueue(k, pkt(1, 100))
	m.Enqueue(k, pkt(2, 100)) // no second activation while non-empty
	if len(activations) != 1 || activations[0] != k {
		t.Fatalf("activations = %v", activations)
	}
	if m.Active() != 1 || m.Used() != 200 {
		t.Fatalf("active=%d used=%d", m.Active(), m.Used())
	}
	// Drain fully, then re-enqueue: activation fires again.
	m.Grant(k, 200)
	if m.Active() != 0 {
		t.Fatal("queue should be pruned when drained")
	}
	m.Enqueue(k, pkt(3, 50))
	if len(activations) != 2 {
		t.Fatalf("re-activation missing: %v", activations)
	}
}

func TestTailDrop(t *testing.T) {
	m := NewManager(1000)
	k := Key{DstFA: 1}
	if !m.Enqueue(k, pkt(1, 600)) {
		t.Fatal("first enqueue must fit")
	}
	if m.Enqueue(k, pkt(2, 500)) {
		t.Fatal("over-capacity enqueue must drop")
	}
	if m.Dropped != 1 || m.DroppedB != 500 {
		t.Fatalf("drop stats: %d %d", m.Dropped, m.DroppedB)
	}
	if !m.Enqueue(k, pkt(3, 400)) {
		t.Fatal("fitting enqueue must succeed")
	}
}

func TestGrantSurplusAccounting(t *testing.T) {
	m := NewManager(1 << 20)
	k := Key{DstFA: 1}
	// Three 1500B packets; a 2KB credit releases two (surplus 952B debt).
	for i := 1; i <= 3; i++ {
		m.Enqueue(k, pkt(uint64(i), 1500))
	}
	batch := m.Grant(k, 2048)
	if len(batch) != 2 {
		t.Fatalf("first grant released %d packets, want 2", len(batch))
	}
	q := m.Queue(k)
	if q.CreditBalance() != 2048-3000 {
		t.Fatalf("surplus = %d, want -952", q.CreditBalance())
	}
	// Next 2KB credit first repays the 952B surplus, leaving 1096B:
	// enough to release the third packet (overshooting again).
	batch = m.Grant(k, 2048)
	if len(batch) != 1 {
		t.Fatalf("second grant released %d packets, want 1", len(batch))
	}
	if m.Active() != 0 {
		t.Fatal("drained VOQ should be pruned")
	}
}

func TestGrantRepaysBeforeRelease(t *testing.T) {
	m := NewManager(1 << 20)
	k := Key{DstFA: 1}
	m.Enqueue(k, pkt(1, 4000))
	m.Enqueue(k, pkt(2, 4000))
	if got := m.Grant(k, 1000); len(got) != 1 {
		// 1000 credit > 0 balance: releases the 4000B packet, surplus -3000.
		t.Fatalf("got %d", len(got))
	}
	for i := 0; i < 3; i++ {
		if got := m.Grant(k, 1000); len(got) != 0 {
			t.Fatalf("surplus not honored at repayment %d: released %d packets", i, len(got))
		}
	}
	// Balance now -3000+3000 = 0; one more byte of credit releases.
	if got := m.Grant(k, 1); len(got) != 1 {
		t.Fatalf("expected release after surplus repaid, got %d", len(got))
	}
}

func TestGrantUnknownVOQ(t *testing.T) {
	m := NewManager(1024)
	if got := m.Grant(Key{DstFA: 9}, 4096); got != nil {
		t.Fatalf("grant to empty VOQ returned %v", got)
	}
}

func TestBacklogAndKeys(t *testing.T) {
	m := NewManager(1 << 20)
	a, b := Key{DstFA: 1}, Key{DstFA: 2, TC: 3}
	m.Enqueue(a, pkt(1, 100))
	m.Enqueue(b, pkt(2, 300))
	if m.Backlog(a) != 100 || m.Backlog(b) != 300 || m.Backlog(Key{DstFA: 9}) != 0 {
		t.Fatal("backlog accounting wrong")
	}
	if len(m.Keys()) != 2 {
		t.Fatalf("keys = %v", m.Keys())
	}
}

// Property: conservation — bytes enqueued = bytes dequeued + bytes still
// queued + bytes dropped, under random operations; used never exceeds
// capacity; FIFO order per VOQ.
func TestPropertyConservationAndFIFO(t *testing.T) {
	f := func(ops []uint32) bool {
		m := NewManager(100_000)
		rng := rand.New(rand.NewSource(7))
		var nextID uint64 = 1
		var in, out int64
		lastSeen := map[Key]uint64{}
		fifoOK := true
		for _, op := range ops {
			k := Key{DstFA: uint16(op % 4), TC: uint8(op % 2)}
			if op%3 == 0 {
				batch := m.Grant(k, int64(op%8192))
				for _, p := range batch {
					out += int64(p.Size)
					if p.ID <= lastSeen[k] {
						fifoOK = false
					}
					lastSeen[k] = p.ID
				}
			} else {
				size := int(op%3000) + 1
				if m.Enqueue(k, pkt(nextID, size)) {
					in += int64(size)
				}
				nextID++
			}
			if m.Used() > m.Capacity() || m.Used() < 0 {
				return false
			}
			_ = rng
		}
		// Flush everything.
		for _, k := range m.Keys() {
			for {
				batch := m.Grant(k, 1<<30)
				if len(batch) == 0 {
					break
				}
				for _, p := range batch {
					out += int64(p.Size)
				}
			}
		}
		return fifoOK && in == out && m.Used() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
