package tcp

import (
	"fmt"
	"testing"

	"stardust/internal/netsim"
	"stardust/internal/sim"
)

// DCTCP's alpha must converge toward the marking fraction under sustained
// congestion and decay toward zero once congestion clears.
func TestDCTCPAlphaDynamics(t *testing.T) {
	s := sim.New()
	cfg := DefaultConfig()
	cfg.DCTCP = true
	q, fwd, rev := dumbbell(s, 10e9, 100*9000, 10*9000)
	src := NewSource(s, cfg, "f", 0, nil)
	sink := NewSink(s, cfg, src, rev)
	src.fwd = append(fwd, sink)
	src.Start()
	s.RunUntil(30 * sim.Millisecond)
	if src.alpha <= 0.01 {
		t.Fatalf("alpha %v did not rise under congestion", src.alpha)
	}
	if q.Marks == 0 {
		t.Fatal("bottleneck never marked")
	}
	// The queue must oscillate near the threshold, not the tail.
	if q.PeakBytes > 40*9000 {
		t.Fatalf("DCTCP queue peaked at %d bytes", q.PeakBytes)
	}
}

// RTO recovery: a total blackout (all packets of a window lost) must be
// repaired by the retransmission timer, not hang forever.
func TestRTORecoversFromBlackout(t *testing.T) {
	s := sim.New()
	cfg := DefaultConfig()
	// A queue so small that slow-start bursts lose whole windows.
	_, fwd, rev := dumbbell(s, 10e9, 1*9000, 0)
	src := NewSource(s, cfg, "f", 500_000, nil)
	sink := NewSink(s, cfg, src, rev)
	src.fwd = append(fwd, sink)
	src.Start()
	s.RunUntil(400 * sim.Millisecond)
	if !src.Done {
		t.Fatalf("flow stuck: acked %d, rtx %d, timeouts %d", src.DeliveredB, src.Retransmits, src.Timeouts)
	}
	if src.Timeouts == 0 {
		t.Fatal("expected at least one RTO with a single-packet buffer")
	}
}

// LIA formula invariant (RFC 6356): for equal-RTT subflows, the aggregate
// window increase per acked byte never exceeds what a single NewReno flow
// with the combined window would gain — the "do no harm" property at the
// controller level.
func TestLIAAggregateIncreaseBounded(t *testing.T) {
	s := sim.New()
	cfg := DefaultConfig()
	for _, windows := range [][]float64{
		{9000, 9000, 9000, 9000},
		{90000, 9000, 9000, 9000},
		{50000, 50000},
		{9000},
	} {
		m := NewMPTCP(s, cfg, "m", 0, make([][]netsim.Handler, len(windows)))
		var total float64
		for i, w := range windows {
			m.Subflows[i].cwnd = w
			m.Subflows[i].srtt = 100 * sim.Microsecond
			total += w
		}
		const acked = 9000
		var aggregate float64
		for _, sub := range m.Subflows {
			before := sub.cwnd
			m.liaIncrease(sub, acked*int64(sub.cwnd)/int64(total)+1)
			aggregate += sub.cwnd - before
		}
		// A single flow of window `total` gains acked*MSS/total per ack.
		single := float64(acked) * float64(cfg.MSS) / total
		if aggregate > single*1.2+1 {
			t.Fatalf("windows %v: aggregate increase %.1f exceeds single-flow %.1f",
				windows, aggregate, single)
		}
	}
}

// The per-subflow cap: no subflow may grow faster than plain NewReno
// would on its own window.
func TestLIAPerSubflowCap(t *testing.T) {
	s := sim.New()
	cfg := DefaultConfig()
	m := NewMPTCP(s, cfg, "m", 0, make([][]netsim.Handler, 2))
	// Tiny subflow next to a huge one: alpha favors the big window, but
	// the small subflow's increase stays capped at its own Reno rate.
	m.Subflows[0].cwnd = 9000
	m.Subflows[1].cwnd = 900000
	for _, sub := range m.Subflows {
		sub.srtt = 100 * sim.Microsecond
	}
	before := m.Subflows[0].cwnd
	m.liaIncrease(m.Subflows[0], 9000)
	inc := m.Subflows[0].cwnd - before
	reno := 9000.0 * float64(cfg.MSS) / before
	if inc > reno+1e-9 {
		t.Fatalf("subflow increase %.1f exceeds its Reno cap %.1f", inc, reno)
	}
}

// End-to-end sanity: a coupled MPTCP connection sharing a bottleneck with
// one TCP flow must not exceed its uncoupled packet-share bound by more
// than the synchronization noise of this coarse AIMD model.
func TestMPTCPSharedBottleneckBound(t *testing.T) {
	s := sim.New()
	cfg := DefaultConfig()
	shared := netsim.NewQueue(s, "shared", 10e9, 100*9000, 0)
	pipe := netsim.NewPipe(s, 10*sim.Microsecond)
	revT := netsim.NewQueue(s, "revT", 10e9, 100*9000, 0)
	tcpFlow := NewSource(s, cfg, "tcp", 0, nil)
	tcpSink := NewSink(s, cfg, tcpFlow, []netsim.Handler{revT, pipe, Ack})
	tcpFlow.fwd = []netsim.Handler{shared, pipe, tcpSink}
	m := NewMPTCP(s, cfg, "m", 0, make([][]netsim.Handler, 4))
	for _, sub := range m.Subflows {
		revQ := netsim.NewQueue(s, "revM", 10e9, 100*9000, 0)
		sink := NewSink(s, cfg, sub, []netsim.Handler{revQ, pipe, Ack})
		sub.fwd = []netsim.Handler{shared, pipe, sink}
	}
	tcpFlow.Start()
	m.Start()
	s.RunUntil(100 * sim.Millisecond)
	if tcpFlow.DeliveredB == 0 {
		t.Fatal("TCP starved")
	}
	ratio := float64(m.DeliveredB()) / float64(tcpFlow.DeliveredB)
	// 4 subflows vs 1 flow: packet-share is 4x; allow synchronization
	// noise above it but fail on uncoupled-style runaway.
	if ratio > 6 {
		t.Fatalf("MPTCP took %.1fx of the TCP flow", ratio)
	}
	total := float64(m.DeliveredB()+tcpFlow.DeliveredB) * 8 / 100e-3
	if total < 8e9 {
		t.Fatalf("bottleneck underutilized: %.2f Gbps", total/1e9)
	}
}

// DCQCN rate recovery: after congestion clears, the sender climbs back
// toward line rate through fast recovery and additive increase.
func TestDCQCNRateRecovery(t *testing.T) {
	s := sim.New()
	d := NewDCQCN(s, "d", 9000, 10e9, 0, nil)
	q := netsim.NewQueue(s, "q", 10e9, 300*9000, 0)
	pipe := netsim.NewPipe(s, 10*sim.Microsecond)
	rq := netsim.NewQueue(s, "rev", 10e9, 300*9000, 0)
	sink := NewDCQCNSink(s, d, []netsim.Handler{rq, pipe, DCQCNAck})
	d.fwd = []netsim.Handler{q, pipe, sink}
	d.Start()
	// Synthetic CNP burst cuts the rate.
	s.At(sim.Millisecond, func() {
		for i := 0; i < 5; i++ {
			d.OnCNP()
		}
	})
	s.RunUntil(2 * sim.Millisecond)
	cut := d.Rate()
	if cut >= 10e9 {
		t.Fatal("CNPs did not cut the rate")
	}
	s.RunUntil(60 * sim.Millisecond)
	if d.Rate() < netsim.Bps(0.95*10e9) {
		t.Fatalf("rate did not recover: %.2fG after 58ms", float64(d.Rate())/1e9)
	}
}

// Regression for the htsim/alltoall DCQCN collapse: 15 senders fanning
// into one lossy 10G bottleneck (each host of a K=4 all-to-all sources 15
// flows through its own access link). Without the PFC-style in-flight
// pause and the loss-recovery escape, drops outpace ECN marks — packets
// die in the full queue before the marker can slow anyone down — and
// every flow livelocks with its cumulative ack stalled behind a loss hole
// while it keeps injecting near line rate: aggregate goodput sits under
// 1% of the bottleneck. With them, the fan-in must sustain a healthy
// share of the link.
func TestDCQCNFanInRecoversFromLoss(t *testing.T) {
	const n = 15
	s := sim.New()
	bottleneck := netsim.NewQueue(s, "bn", 10e9, 100*9000, 20*9000)
	pipe := netsim.NewPipe(s, 10*sim.Microsecond)
	var flows []*DCQCN
	for i := 0; i < n; i++ {
		d := NewDCQCN(s, fmt.Sprintf("d%d", i), 9000, 10e9, 0, nil)
		rq := netsim.NewQueue(s, fmt.Sprintf("rev%d", i), 10e9, 100*9000, 0)
		sink := NewDCQCNSink(s, d, []netsim.Handler{rq, pipe, DCQCNAck})
		d.fwd = []netsim.Handler{bottleneck, pipe, sink}
		d.Start()
		flows = append(flows, d)
	}
	warmup, window := 10*sim.Millisecond, 20*sim.Millisecond
	s.RunUntil(warmup)
	var base int64
	for _, d := range flows {
		base += d.DeliveredB
	}
	s.RunUntil(warmup + window)
	var sum int64
	for _, d := range flows {
		sum += d.DeliveredB
	}
	goodput := float64(sum-base) * 8 / window.Seconds()
	if goodput < 0.5*10e9 {
		t.Fatalf("fan-in collapsed: aggregate goodput %.2fG of 10G (drops=%d)",
			goodput/1e9, bottleneck.Drops)
	}
	// The escape exists because marks alone cannot stop the collapse; the
	// run must actually have exercised a loss path, or this test is not
	// the regression it claims to be.
	var escapes uint64
	for _, d := range flows {
		escapes += d.FastRecov + d.Retransmits
	}
	if escapes == 0 {
		t.Fatal("no loss escape fired; fan-in never stressed the loss path")
	}
}

// The ACK endpoint must ignore packets whose Flow is not a Source (no
// panic on foreign traffic).
func TestAckEndpointForeignFlow(t *testing.T) {
	Ack.Receive(&netsim.Packet{Flow: "not a source", Seq: 1})
	DCQCNAck.Receive(&netsim.Packet{Flow: 3.14, Seq: 1})
}

// A finite flow smaller than one MSS still completes.
func TestSubMSSFlow(t *testing.T) {
	s := sim.New()
	cfg := DefaultConfig()
	_, fwd, rev := dumbbell(s, 10e9, 100*9000, 0)
	src := NewSource(s, cfg, "tiny", 400, nil)
	sink := NewSink(s, cfg, src, rev)
	src.fwd = append(fwd, sink)
	src.Start()
	s.RunUntil(10 * sim.Millisecond)
	if !src.Done || src.DeliveredB != 400 {
		t.Fatalf("tiny flow: done=%v acked=%d", src.Done, src.DeliveredB)
	}
}

// Quota accounting: concurrent subflows never oversell the pool.
func TestQuotaExactness(t *testing.T) {
	q := NewQuota(10_000)
	var total int64
	for q.Remaining() > 0 {
		total += q.Take(3000)
	}
	if total != 10_000 {
		t.Fatalf("quota assigned %d of 10000", total)
	}
	if q.Take(1) != 0 {
		t.Fatal("overdraw")
	}
}
