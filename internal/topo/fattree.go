package topo

import "fmt"

// FatTree is a standard k-ary fat-tree [Al-Fares et al.]: k pods, each with
// k/2 edge and k/2 aggregation switches, (k/2)^2 core switches, and k^3/4
// hosts. All indices are dense integers so simulators can use slices.
type FatTree struct {
	K     int
	Hosts int // k^3/4
	Edges int // k^2/2
	Aggs  int // k^2/2
	Cores int // (k/2)^2
}

// NewFatTree builds the k-ary fat-tree descriptor. k must be even and >= 4.
func NewFatTree(k int) (*FatTree, error) {
	if k < 4 || k%2 != 0 {
		return nil, fmt.Errorf("topo: fat-tree k must be even and >= 4, got %d", k)
	}
	return &FatTree{
		K:     k,
		Hosts: k * k * k / 4,
		Edges: k * k / 2,
		Aggs:  k * k / 2,
		Cores: k * k / 4,
	}, nil
}

// HostEdge returns the edge switch a host attaches to.
func (f *FatTree) HostEdge(host int) int { return host / (f.K / 2) }

// EdgePod returns the pod an edge switch belongs to.
func (f *FatTree) EdgePod(edge int) int { return edge / (f.K / 2) }

// AggPod returns the pod an aggregation switch belongs to.
func (f *FatTree) AggPod(agg int) int { return agg / (f.K / 2) }

// AggOfPod returns the a-th aggregation switch of pod p.
func (f *FatTree) AggOfPod(p, a int) int { return p*(f.K/2) + a }

// CoreOf returns the core switch reached by aggregation-position a's c-th
// uplink; it is the same core for position a in every pod, which is what
// makes the fat-tree rearrangeably non-blocking.
func (f *FatTree) CoreOf(a, c int) int { return a*(f.K/2) + c }

// PathsBetween returns the number of distinct shortest paths between two
// hosts: 1 on the same edge, k/2 within a pod, (k/2)^2 across pods.
func (f *FatTree) PathsBetween(src, dst int) int {
	se, de := f.HostEdge(src), f.HostEdge(dst)
	if se == de {
		return 1
	}
	if f.EdgePod(se) == f.EdgePod(de) {
		return f.K / 2
	}
	return (f.K / 2) * (f.K / 2)
}

// Hop identifies one directed hop of a route; simulators map hops to their
// queue+pipe objects.
type Hop struct {
	Level int // 0 host->edge, 1 edge->agg, 2 agg->core, 3 core->agg, 4 agg->edge, 5 edge->host
	From  int // device index at the hop's source level
	To    int // device index at the hop's destination level
}

// Route enumerates the directed hops from src host to dst host using path
// choice "choice" (0 <= choice < PathsBetween(src,dst)). Deterministic:
// the same choice always yields the same path, which is how per-flow ECMP
// hashing is modelled.
func (f *FatTree) Route(src, dst, choice int) []Hop {
	se, de := f.HostEdge(src), f.HostEdge(dst)
	if src == dst {
		return nil
	}
	if se == de {
		return []Hop{
			{Level: 0, From: src, To: se},
			{Level: 5, From: se, To: dst},
		}
	}
	sp, dp := f.EdgePod(se), f.EdgePod(de)
	if sp == dp {
		a := choice % (f.K / 2)
		agg := f.AggOfPod(sp, a)
		return []Hop{
			{Level: 0, From: src, To: se},
			{Level: 1, From: se, To: agg},
			{Level: 4, From: agg, To: de},
			{Level: 5, From: de, To: dst},
		}
	}
	h := f.K / 2
	a := choice % h
	c := (choice / h) % h
	upAgg := f.AggOfPod(sp, a)
	core := f.CoreOf(a, c)
	downAgg := f.AggOfPod(dp, a)
	return []Hop{
		{Level: 0, From: src, To: se},
		{Level: 1, From: se, To: upAgg},
		{Level: 2, From: upAgg, To: core},
		{Level: 3, From: core, To: downAgg},
		{Level: 4, From: downAgg, To: de},
		{Level: 5, From: de, To: dst},
	}
}
