// Command stardust-htsim regenerates the §6.3 protocol comparison
// (Fig 10a-c): permutation throughput, flow-completion times under
// background load, and incast completion, for MPTCP, DCTCP, DCQCN and
// Stardust.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"stardust/internal/experiments"
	"stardust/internal/sim"
)

func main() {
	exp := flag.String("exp", "perm", "experiment: perm, fct, incast")
	k := flag.Int("k", 8, "fat-tree K (12 = the paper's 432 hosts)")
	durMs := flag.Int("dur", 20, "measurement window in ms")
	protos := flag.String("protos", "all", "comma-separated protocols or all")
	flows := flag.Int("flows", 100, "measured flows for -exp fct")
	incastN := flag.String("incastN", "4,8,16,32", "backend counts for -exp incast")
	flag.Parse()

	cfg := experiments.DefaultHtsim()
	cfg.K = *k
	cfg.Duration = sim.Time(*durMs) * sim.Millisecond

	var list []experiments.Protocol
	if *protos == "all" {
		list = experiments.Protocols
	} else {
		for _, p := range strings.Split(*protos, ",") {
			list = append(list, experiments.Protocol(p))
		}
	}

	switch *exp {
	case "perm":
		fmt.Printf("== Fig 10(a): permutation on a %d-host fat-tree (K=%d) ==\n", k3(*k), *k)
		for _, p := range list {
			r, err := experiments.Permutation(cfg, p)
			if err != nil {
				fatal(err)
			}
			experiments.WritePermutation(os.Stdout, r)
		}
	case "fct":
		fmt.Printf("== Fig 10(b): Web-workload FCT under background load (K=%d) ==\n", *k)
		for _, p := range list {
			r, err := experiments.FCT(cfg, p, *flows)
			if err != nil {
				fatal(err)
			}
			experiments.WriteFCT(os.Stdout, r)
		}
	case "incast":
		fmt.Printf("== Fig 10(c): incast, 450KB responses (K=%d) ==\n", *k)
		var ns []int
		for _, s := range strings.Split(*incastN, ",") {
			var n int
			fmt.Sscanf(s, "%d", &n)
			if n > 0 {
				ns = append(ns, n)
			}
		}
		for _, p := range list {
			for _, n := range ns {
				r, err := experiments.Incast(cfg, p, n, 450_000)
				if err != nil && r == nil {
					fatal(err)
				}
				experiments.WriteIncast(os.Stdout, r)
			}
		}
	default:
		fatal(fmt.Errorf("unknown experiment %q", *exp))
	}
}

func k3(k int) int { return k * k * k / 4 }

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
