package distsim

import (
	"hash/fnv"
	"testing"

	"stardust/internal/fabric"
	"stardust/internal/sim"
)

// Pins the digest encoding: foldDigest over gather() must equal the
// scenarios-style fold over ReadLinkCounters.
func TestDigestFoldMatchesLinkCounters(t *testing.T) {
	spec := healSpec(3)
	m, err := NewModel(spec)
	if err != nil {
		t.Fatal(err)
	}
	out, err := m.RunLocal()
	if err != nil {
		t.Fatal(err)
	}
	h := fnv.New64a()
	w := func(v uint64) {
		var buf [8]byte
		for i := range buf {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	for _, s := range m.Sinks {
		w(s.Cells)
		w(s.Bytes)
	}
	var lc [2]fabric.LinkCounters
	for i := 0; i < m.Net.NumLinks(); i++ {
		m.Net.ReadLinkCounters(i, &lc)
		for d := 0; d < 2; d++ {
			w(lc[d].FwdBytes)
			w(lc[d].FwdCells)
			w(lc[d].Drops)
		}
	}
	if h.Sum64() != out.Digest {
		t.Fatalf("digest fold drifted: scenarios-style %016x vs foldDigest %016x", h.Sum64(), out.Digest)
	}
	_ = sim.Microsecond
}
