package netsim

import (
	"fmt"

	"stardust/internal/sim"
	"stardust/internal/topo"
)

// FatTreeConfig sizes the simulated fat-tree of Appendix G: all links the
// same rate (10G in the paper), per-port buffering of QueuePackets full
// packets, and optional ECN marking for DCTCP/DCQCN.
type FatTreeConfig struct {
	K            int
	LinkRate     Bps
	LinkDelay    sim.Time
	QueuePackets int // buffer per port, in MTU-size packets (paper: 100)
	MTU          int
	ECNThreshPkt int // marking threshold in packets (0 = off)
}

// DefaultFatTree returns the 432-node configuration of §6.3.
func DefaultFatTree() FatTreeConfig {
	return FatTreeConfig{
		K:            12,
		LinkRate:     10e9,
		LinkDelay:    sim.Microsecond, // ~200m at 5ns/m, htsim-style
		QueuePackets: 100,
		MTU:          9000,
		ECNThreshPkt: 0,
	}
}

// FatTreeNet owns the queues and pipes of a fat-tree instance. Directed
// hops are modelled as a serialization queue followed by a propagation
// pipe.
type FatTreeNet struct {
	Cfg  FatTreeConfig
	Sim  *sim.Simulator
	Topo *topo.FatTree

	// queues[level] indexed by the *source* device of the hop and, for
	// fan-out levels, the chosen next device.
	hostUp   []*Queue   // host -> edge (one per host)
	edgeUp   [][]*Queue // edge -> agg: [edge][aggPos]
	aggUp    [][]*Queue // agg -> core: [agg][corePos]
	coreDown [][]*Queue // core -> agg: [core][pod]
	aggDown  [][]*Queue // agg -> edge: [agg][edgePos]
	edgeDown [][]*Queue // edge -> host: [edge][hostPos]
	pipes    *Pipe      // shared: all links have identical delay
}

// NewFatTreeNet builds all queues for a k-ary fat-tree.
func NewFatTreeNet(s *sim.Simulator, cfg FatTreeConfig) (*FatTreeNet, error) {
	ft, err := topo.NewFatTree(cfg.K)
	if err != nil {
		return nil, err
	}
	if cfg.LinkRate <= 0 || cfg.QueuePackets < 1 || cfg.MTU < 64 {
		return nil, fmt.Errorf("netsim: bad fat-tree config")
	}
	n := &FatTreeNet{Cfg: cfg, Sim: s, Topo: ft, pipes: NewPipe(s, cfg.LinkDelay)}
	maxB := cfg.QueuePackets * cfg.MTU
	ecn := cfg.ECNThreshPkt * cfg.MTU
	h := cfg.K / 2
	mk := func(name string) *Queue { return NewQueue(s, name, cfg.LinkRate, maxB, ecn) }

	n.hostUp = make([]*Queue, ft.Hosts)
	for i := range n.hostUp {
		n.hostUp[i] = mk(fmt.Sprintf("h%d-up", i))
	}
	n.edgeUp = make([][]*Queue, ft.Edges)
	n.edgeDown = make([][]*Queue, ft.Edges)
	for e := 0; e < ft.Edges; e++ {
		n.edgeUp[e] = make([]*Queue, h)
		n.edgeDown[e] = make([]*Queue, h)
		for a := 0; a < h; a++ {
			n.edgeUp[e][a] = mk(fmt.Sprintf("e%d-a%d", e, a))
			n.edgeDown[e][a] = mk(fmt.Sprintf("e%d-h%d", e, a))
		}
	}
	n.aggUp = make([][]*Queue, ft.Aggs)
	n.aggDown = make([][]*Queue, ft.Aggs)
	for a := 0; a < ft.Aggs; a++ {
		n.aggUp[a] = make([]*Queue, h)
		n.aggDown[a] = make([]*Queue, h)
		for c := 0; c < h; c++ {
			n.aggUp[a][c] = mk(fmt.Sprintf("a%d-c%d", a, c))
			n.aggDown[a][c] = mk(fmt.Sprintf("a%d-e%d", a, c))
		}
	}
	n.coreDown = make([][]*Queue, ft.Cores)
	for c := 0; c < ft.Cores; c++ {
		n.coreDown[c] = make([]*Queue, cfg.K)
		for p := 0; p < cfg.K; p++ {
			n.coreDown[c][p] = mk(fmt.Sprintf("c%d-p%d", c, p))
		}
	}
	return n, nil
}

// Paths returns the number of distinct paths between two hosts.
func (n *FatTreeNet) Paths(src, dst int) int { return n.Topo.PathsBetween(src, dst) }

// Route returns the forward route (queues and pipes interleaved) from src
// host to dst host using the given ECMP path choice. The caller appends
// the destination endpoint.
func (n *FatTreeNet) Route(src, dst, choice int) []Handler {
	hops := n.Topo.Route(src, dst, choice)
	h := n.Cfg.K / 2
	var out []Handler
	add := func(q *Queue) { out = append(out, q, n.pipes) }
	for _, hp := range hops {
		switch hp.Level {
		case 0:
			add(n.hostUp[src])
		case 1:
			add(n.edgeUp[hp.From][hp.To%h])
		case 2:
			add(n.aggUp[hp.From][hp.To%h])
		case 3:
			add(n.coreDown[hp.From][n.Topo.AggPod(hp.To)])
		case 4:
			add(n.aggDown[hp.From][hp.To%h])
		case 5:
			add(n.edgeDown[hp.From][dst%h])
		}
	}
	return out
}

// AllQueues visits every queue (for aggregate statistics).
func (n *FatTreeNet) AllQueues(fn func(*Queue)) {
	for _, q := range n.hostUp {
		fn(q)
	}
	for _, qs := range n.edgeUp {
		for _, q := range qs {
			fn(q)
		}
	}
	for _, qs := range n.edgeDown {
		for _, q := range qs {
			fn(q)
		}
	}
	for _, qs := range n.aggUp {
		for _, q := range qs {
			fn(q)
		}
	}
	for _, qs := range n.aggDown {
		for _, q := range qs {
			fn(q)
		}
	}
	for _, qs := range n.coreDown {
		for _, q := range qs {
			fn(q)
		}
	}
}

// EdgeUplinkBytes returns forwarded bytes per edge-switch uplink queue in
// device-major order — the ECMP load-balance evidence compared against
// the cell fabric's per-link spread in fabric/linkload.
func (n *FatTreeNet) EdgeUplinkBytes() []uint64 {
	var out []uint64
	for _, qs := range n.edgeUp {
		for _, q := range qs {
			out = append(out, q.FwdBytes)
		}
	}
	return out
}

// TotalDrops sums tail drops across the network.
func (n *FatTreeNet) TotalDrops() uint64 {
	var d uint64
	n.AllQueues(func(q *Queue) { d += q.Drops })
	return d
}
