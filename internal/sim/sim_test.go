package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptyRun(t *testing.T) {
	s := New()
	s.Run()
	if s.Now() != 0 {
		t.Fatalf("Now = %d, want 0", s.Now())
	}
	if s.Processed != 0 {
		t.Fatalf("Processed = %d, want 0", s.Processed)
	}
}

func TestOrdering(t *testing.T) {
	s := New()
	var got []int
	s.At(30, func() { got = append(got, 3) })
	s.At(10, func() { got = append(got, 1) })
	s.At(20, func() { got = append(got, 2) })
	s.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if s.Now() != 30 {
		t.Fatalf("Now = %d, want 30", s.Now())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	s := New()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		s.At(5, func() { got = append(got, i) })
	}
	s.Run()
	for i := 0; i < 100; i++ {
		if got[i] != i {
			t.Fatalf("same-time events out of order at %d: %v", i, got[:i+1])
		}
	}
}

func TestPastSchedulingClamps(t *testing.T) {
	s := New()
	var fired Time = -1
	s.At(100, func() {
		s.At(50, func() { fired = s.Now() }) // in the past
	})
	s.Run()
	if fired != 100 {
		t.Fatalf("past event fired at %d, want clamped to 100", fired)
	}
}

func TestAfterRelative(t *testing.T) {
	s := New()
	var at Time
	s.At(1000, func() {
		s.After(234, func() { at = s.Now() })
	})
	s.Run()
	if at != 1234 {
		t.Fatalf("After fired at %d, want 1234", at)
	}
}

func TestRunUntil(t *testing.T) {
	s := New()
	count := 0
	for i := Time(1); i <= 10; i++ {
		s.At(i*100, func() { count++ })
	}
	s.RunUntil(500)
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	if s.Now() != 500 {
		t.Fatalf("Now = %d, want 500", s.Now())
	}
	s.RunUntil(2000)
	if count != 10 {
		t.Fatalf("count = %d, want 10", count)
	}
	// Clock advances to the deadline even with no events.
	if s.Now() != 2000 {
		t.Fatalf("Now = %d, want 2000", s.Now())
	}
}

func TestStop(t *testing.T) {
	s := New()
	count := 0
	for i := Time(1); i <= 10; i++ {
		s.At(i, func() {
			count++
			if count == 3 {
				s.Stop()
			}
		})
	}
	s.Run()
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
	if s.Pending() != 7 {
		t.Fatalf("Pending = %d, want 7", s.Pending())
	}
	s.Run() // resumes
	if count != 10 {
		t.Fatalf("count after resume = %d, want 10", count)
	}
}

func TestTimerFires(t *testing.T) {
	s := New()
	tm := NewTimer(s)
	fired := false
	tm.Arm(500, func() { fired = true })
	if !tm.Armed() {
		t.Fatal("timer should be armed")
	}
	s.Run()
	if !fired {
		t.Fatal("timer did not fire")
	}
	if tm.Armed() {
		t.Fatal("timer should be disarmed after firing")
	}
}

func TestTimerCancel(t *testing.T) {
	s := New()
	tm := NewTimer(s)
	fired := false
	tm.Arm(500, func() { fired = true })
	s.At(100, func() { tm.Cancel() })
	s.Run()
	if fired {
		t.Fatal("cancelled timer fired")
	}
}

func TestTimerRearm(t *testing.T) {
	s := New()
	tm := NewTimer(s)
	var fireTimes []Time
	tm.Arm(500, func() { fireTimes = append(fireTimes, s.Now()) })
	s.At(100, func() {
		tm.Arm(1000, func() { fireTimes = append(fireTimes, s.Now()) })
	})
	s.Run()
	if len(fireTimes) != 1 || fireTimes[0] != 1100 {
		t.Fatalf("fireTimes = %v, want [1100]", fireTimes)
	}
}

func TestTimerPeriodic(t *testing.T) {
	s := New()
	tm := NewTimer(s)
	ticks := 0
	var tick func()
	tick = func() {
		ticks++
		if ticks < 5 {
			tm.Arm(10, tick)
		}
	}
	tm.Arm(10, tick)
	s.Run()
	if ticks != 5 {
		t.Fatalf("ticks = %d, want 5", ticks)
	}
	if s.Now() != 50 {
		t.Fatalf("Now = %d, want 50", s.Now())
	}
}

func TestTimeConversions(t *testing.T) {
	if Second != 1e12 {
		t.Fatalf("Second = %d", Second)
	}
	if got := (2500 * Nanosecond).Microseconds(); got != 2.5 {
		t.Fatalf("Microseconds = %v, want 2.5", got)
	}
	if got := (3 * Microsecond).Seconds(); got != 3e-6 {
		t.Fatalf("Seconds = %v", got)
	}
	if got := (5 * Nanosecond).Nanoseconds(); got != 5 {
		t.Fatalf("Nanoseconds = %v", got)
	}
}

// Property: events fire in nondecreasing time order regardless of the
// insertion order.
func TestPropertyEventOrder(t *testing.T) {
	f := func(delays []uint16) bool {
		if len(delays) == 0 {
			return true
		}
		s := New()
		var fired []Time
		for _, d := range delays {
			s.At(Time(d), func() { fired = append(fired, s.Now()) })
		}
		s.Run()
		if len(fired) != len(delays) {
			return false
		}
		if !sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] }) {
			return false
		}
		want := make([]Time, len(delays))
		for i, d := range delays {
			want[i] = Time(d)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if fired[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: interleaved scheduling from inside events preserves global order.
func TestPropertyNestedScheduling(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	s := New()
	var last Time
	ok := true
	var spawn func(depth int)
	spawn = func(depth int) {
		if s.Now() < last {
			ok = false
		}
		last = s.Now()
		if depth <= 0 {
			return
		}
		n := rng.Intn(3)
		for i := 0; i < n; i++ {
			d := Time(rng.Intn(1000))
			s.After(d, func() { spawn(depth - 1) })
		}
	}
	for i := 0; i < 50; i++ {
		s.At(Time(rng.Intn(10000)), func() { spawn(4) })
	}
	s.Run()
	if !ok {
		t.Fatal("time went backwards during nested scheduling")
	}
}

func BenchmarkSchedule(b *testing.B) {
	s := New()
	fn := func() {}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.At(Time(i), fn)
		if s.Pending() > 1024 {
			s.RunUntil(Time(i))
		}
	}
	s.Run()
}
