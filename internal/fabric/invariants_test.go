package fabric

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"stardust/internal/netsim"
	"stardust/internal/parsim"
	"stardust/internal/sim"
)

// Property/invariant harness for the sharded fabric: randomized
// topologies, traffic and fail/heal schedules, with every injected cell
// carrying a unique id so its fate (delivered, dropped on a dead link, no
// route, queue tail-drop) is accounted exactly. The same program runs at
// shards=1 and shards=4 and the canonical outputs must be byte-identical —
// the engine's determinism claim is verified, not assumed.

// idSink records the ids of cells delivered to one FA, in arrival order.
// It is installed with SetEgress, so it runs pinned to the FA's shard and
// needs no locking.
type idSink struct {
	ids []uint64
}

// Receive implements netsim.Handler.
func (s *idSink) Receive(c *netsim.Packet) {
	s.ids = append(s.ids, uint64(c.Seq))
	c.Release()
}

// dropLog collects the ids of dropped cells. Drops fire on whichever
// shard owns the dropping device, so it locks; order is canonicalized by
// sorting before use.
type dropLog struct {
	mu  sync.Mutex
	ids []uint64
}

func (d *dropLog) record(c *netsim.Packet) {
	d.mu.Lock()
	d.ids = append(d.ids, uint64(c.Seq))
	d.mu.Unlock()
}

// propInjector paces cells out of one FA. Everything it does is a
// function of (fa, seed) alone — its own rng, its own id counter — so the
// offered traffic is identical at every shard count.
type propInjector struct {
	net   *Net
	sm    *sim.Simulator
	fa    int
	numFA int
	rng   *rand.Rand
	gap   sim.Time
	stop  sim.Time
	cell  int
	next  uint64 // id counter; cell id = fa<<32 | next
	sent  uint64
}

// Act implements sim.Action: inject one cell and reschedule.
func (j *propInjector) Act(uint64) {
	if j.sm.Now() >= j.stop {
		return
	}
	c := netsim.NewPacket()
	c.Size = j.cell
	j.next++
	c.Seq = int64(uint64(j.fa)<<32 | j.next)
	dst := j.rng.Intn(j.numFA) // self allowed: exercises the hairpin path
	j.net.Inject(c, j.fa, dst)
	j.sent++
	// Jittered pacing, well under uplink capacity.
	j.sm.AfterAction(j.gap+sim.Time(j.rng.Intn(1000))*sim.Nanosecond, j, 0)
}

// propResult is the canonical outcome of one harness run: every field is
// a deterministic function of (seed, program), independent of shard count.
type propResult struct {
	injected  uint64
	delivered uint64
	dropped   uint64
	events    uint64
	digest    uint64
}

func (r propResult) String() string {
	return fmt.Sprintf("injected=%d delivered=%d dropped=%d events=%d digest=%016x",
		r.injected, r.delivered, r.dropped, r.events, r.digest)
}

// runProperty executes one randomized fabric program on `shards` shards
// and checks the per-run invariants; the caller compares the returned
// canonical result across shard counts.
func runProperty(t *testing.T, seed int64, shards int) propResult {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	k := 4 + 2*rng.Intn(2) // K ∈ {4, 6}
	cl, err := ClosFor(k)
	if err != nil {
		t.Fatal(err)
	}
	look := sim.Microsecond
	eng := parsim.New(parsim.Config{Shards: shards, Lookahead: look})
	cfg := DefaultConfig(10e9, look, seed)
	n, err := NewSharded(eng, cfg, cl, nil)
	if err != nil {
		t.Fatal(err)
	}

	sinks := make([]*idSink, cl.NumFA)
	for fa := range sinks {
		sinks[fa] = &idSink{}
		n.SetEgress(fa, sinks[fa])
	}
	drops := &dropLog{}
	n.OnCellDrop = drops.record
	n.VisitQueues(func(q *netsim.Queue) { q.OnDrop = drops.record })

	const dur = 2 * sim.Millisecond
	injectors := make([]*propInjector, cl.NumFA)
	for fa := 0; fa < cl.NumFA; fa++ {
		j := &propInjector{
			net: n, fa: fa, numFA: cl.NumFA,
			sm:   eng.Shard(n.ShardOfFA(fa)).Sim(),
			rng:  rand.New(rand.NewSource(seed ^ int64(fa)*7919)),
			gap:  2 * sim.Microsecond,
			stop: dur,
			cell: 512,
		}
		injectors[fa] = j
		j.sm.AtAction(sim.Time(fa)*sim.Microsecond/4, j, 0)
	}

	// Random fail/heal schedule: a handful of links die in the first half
	// of the run and every one is healed before the end, so the §5.9
	// self-healing invariant (zero unreachable pairs) must hold at drain.
	nFail := 1 + rng.Intn(4)
	for i := 0; i < nFail; i++ {
		lk := rng.Intn(n.NumLinks())
		failAt := dur/4 + sim.Time(rng.Int63n(int64(dur/4)))
		healAt := failAt + sim.Time(rng.Int63n(int64(dur/4))) + 10*look
		eng.At(failAt, func() { n.FailLink(lk) })
		eng.At(healAt, func() { n.RestoreLink(lk) })
	}

	// Mid-run conservation: at every barrier, in-flight = injected −
	// delivered − dropped must never go negative (a negative value means a
	// cell was double-counted somewhere).
	eng.OnBarrier(func(now sim.Time) {
		inj, del, drp := n.Injected(), n.Delivered(), n.Drops()
		if del+drp > inj {
			t.Errorf("t=%d: delivered %d + dropped %d exceeds injected %d", now, del, drp, inj)
		}
	})

	eng.RunUntilQuiet(dur + 20*cfg.ReachDelay)
	if !eng.Quiet() {
		t.Fatalf("shards=%d: fabric did not drain", shards)
	}

	// Conservation at drain: in-flight is zero, so injected must equal
	// delivered + dropped exactly.
	var wantInjected uint64
	for _, j := range injectors {
		wantInjected += j.sent
	}
	inj, del, drp := n.Injected(), n.Delivered(), n.Drops()
	if inj != wantInjected {
		t.Fatalf("shards=%d: fabric counted %d injected, injectors sent %d", shards, inj, wantInjected)
	}
	if del+drp != inj {
		t.Fatalf("shards=%d: conservation violated: %d delivered + %d dropped != %d injected",
			shards, del, drp, inj)
	}

	// Exact fate accounting: the union of delivered and dropped ids must
	// be precisely the injected id set — no duplication, no loss.
	seen := make(map[uint64]int, inj)
	for _, s := range sinks {
		for _, id := range s.ids {
			seen[id]++
		}
	}
	for _, id := range drops.ids {
		seen[id]++
	}
	if uint64(len(seen)) != inj {
		t.Fatalf("shards=%d: %d distinct cell ids for %d injected", shards, len(seen), inj)
	}
	for id, cnt := range seen {
		if cnt != 1 {
			t.Fatalf("shards=%d: cell %x seen %d times (duplication)", shards, id, cnt)
		}
	}

	// Self-healing: every link healed, so no (spine, FA) hole may remain.
	if u := n.UnreachablePairs(); u != 0 {
		t.Fatalf("shards=%d: %d unreachable pairs after full heal", shards, u)
	}

	// Canonical digest: per-FA delivery order, sorted drop set, and every
	// directed link's counters.
	h := fnv.New64a()
	var buf [8]byte
	w := func(v uint64) {
		for i := range buf {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	for _, s := range sinks {
		w(uint64(len(s.ids)))
		for _, id := range s.ids {
			w(id)
		}
	}
	dropped := append([]uint64(nil), drops.ids...)
	sort.Slice(dropped, func(i, j int) bool { return dropped[i] < dropped[j] })
	for _, id := range dropped {
		w(id)
	}
	var lc [2]LinkCounters
	for i := 0; i < n.NumLinks(); i++ {
		n.ReadLinkCounters(i, &lc)
		for d := 0; d < 2; d++ {
			w(lc[d].FwdBytes)
			w(lc[d].FwdCells)
			w(lc[d].Drops)
		}
	}
	return propResult{
		injected:  inj,
		delivered: del,
		dropped:   drp,
		events:    eng.Processed(),
		digest:    h.Sum64(),
	}
}

// TestFabricPropertyInvariants is the property suite: randomized
// topology/traffic/failure programs, each run at shards=1 and shards=4
// (and once at 2), asserting conservation, exact cell-fate accounting,
// post-heal reachability — and that the canonical outputs are identical
// across shard counts.
func TestFabricPropertyInvariants(t *testing.T) {
	seeds := []int64{1, 7, 42}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			ref := runProperty(t, seed, 1)
			got4 := runProperty(t, seed, 4)
			if got4 != ref {
				t.Fatalf("shards=4 diverged from shards=1:\n  1: %v\n  4: %v", ref, got4)
			}
			if seed == seeds[0] {
				got2 := runProperty(t, seed, 2)
				if got2 != ref {
					t.Fatalf("shards=2 diverged from shards=1:\n  1: %v\n  2: %v", ref, got2)
				}
			}
		})
	}
}

// TestShardedMatchesSoloLossFree cross-checks the sharded engine against
// the classic single-event-loop fabric: with no failures and load far
// under capacity both must deliver every injected cell, and the delivered
// id sets must be identical (delivery order may differ — the two engines
// break same-instant ties differently, by design).
func TestShardedMatchesSoloLossFree(t *testing.T) {
	const seed = 3
	const cells = 2000
	program := func(inject func(c *netsim.Packet, src, dst int), numFA int) {
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < cells; i++ {
			c := netsim.NewPacket()
			c.Size = 512
			c.Seq = int64(i + 1)
			src := i % numFA
			inject(c, src, rng.Intn(numFA))
		}
	}

	cl, err := ClosFor(4)
	if err != nil {
		t.Fatal(err)
	}

	// Solo reference.
	s := sim.New()
	solo, err := New(s, DefaultConfig(10e9, sim.Microsecond, seed), cl)
	if err != nil {
		t.Fatal(err)
	}
	soloIDs := make(map[uint64]bool, cells)
	solo.OnDeliver = func(c *netsim.Packet) { soloIDs[uint64(c.Seq)] = true; c.Release() }
	idx := 0
	program(func(c *netsim.Packet, src, dst int) {
		at := sim.Time(idx/cl.NumFA) * 2 * sim.Microsecond
		idx++
		s.At(at, func() { solo.Inject(c, src, dst) })
	}, cl.NumFA)
	s.Run()
	if got := solo.Delivered(); got != cells {
		t.Fatalf("solo delivered %d of %d", got, cells)
	}

	// Sharded run of the same program.
	eng := parsim.New(parsim.Config{Shards: 4, Lookahead: sim.Microsecond})
	shn, err := NewSharded(eng, DefaultConfig(10e9, sim.Microsecond, seed), cl, nil)
	if err != nil {
		t.Fatal(err)
	}
	sinks := make([]*idSink, cl.NumFA)
	for fa := range sinks {
		sinks[fa] = &idSink{}
		shn.SetEgress(fa, sinks[fa])
	}
	idx = 0
	program(func(c *netsim.Packet, src, dst int) {
		at := sim.Time(idx/cl.NumFA) * 2 * sim.Microsecond
		idx++
		eng.Shard(shn.ShardOfFA(src)).Sim().At(at, func() { shn.Inject(c, src, dst) })
	}, cl.NumFA)
	eng.RunUntilQuiet(sim.Second)
	if got := shn.Delivered(); got != cells {
		t.Fatalf("sharded delivered %d of %d (drops %d)", got, cells, shn.Drops())
	}
	for _, sk := range sinks {
		for _, id := range sk.ids {
			if !soloIDs[id] {
				t.Fatalf("sharded delivered id %d the solo engine did not", id)
			}
			delete(soloIDs, id)
		}
	}
	if len(soloIDs) != 0 {
		t.Fatalf("%d ids delivered by solo but not sharded", len(soloIDs))
	}
}

// TestStardustTransportInOrderUnderFailures covers the per-VOQ in-order
// invariant at the transport layer: packets released by a Stardust VOQ
// must reach the destination endpoint in ship order even when fabric
// links die mid-run and the reassembly timer discards head-of-line
// packets (gaps allowed, reordering not).
func TestStardustTransportInOrderUnderFailures(t *testing.T) {
	const k = 4
	s := sim.New()
	cl, err := ClosFor(k)
	if err != nil {
		t.Fatal(err)
	}
	hostsPer := k / 2
	hosts := cl.NumFA * hostsPer
	sdc := netsim.DefaultStardust(10e9, hostsPer, sim.Microsecond)
	sd, err := netsim.NewStardustNet(s, sdc, hosts, hostsPer)
	if err != nil {
		t.Fatal(err)
	}
	fab, err := New(s, DefaultConfig(netsim.Bps(10e9*1.05), sim.Microsecond, 1), cl)
	if err != nil {
		t.Fatal(err)
	}
	fab.OnDeliver = sd.DeliverCell
	sd.UseFabric(fab)

	type flowRec struct {
		last      int64
		delivered int
	}
	recs := make([]flowRec, hosts)
	for src := 0; src < hosts; src++ {
		src := src
		dst := (src + 5) % hosts
		route := append(sd.Route(src, dst), netsim.HandlerFunc(func(p *netsim.Packet) {
			r := &recs[src]
			if p.Seq <= r.last {
				t.Errorf("flow %d: packet seq %d after %d (reordered)", src, p.Seq, r.last)
			}
			r.last = p.Seq
			r.delivered++
			p.Release()
		}))
		for i := 0; i < 200; i++ {
			i := i
			s.At(sim.Time(i)*4*sim.Microsecond, func() {
				p := netsim.NewPacket()
				p.Size = 1500
				p.Seq = int64(i + 1)
				p.SetRoute(route)
				p.SendOn()
			})
		}
	}
	// Kill two fabric links mid-run, heal later: some packets lose cells
	// and must be discarded by the reassembly timer without ever letting a
	// later packet overtake an earlier one.
	s.At(150*sim.Microsecond, func() { fab.FailLink(0); fab.FailLink(9) })
	s.At(500*sim.Microsecond, func() { fab.RestoreLink(0); fab.RestoreLink(9) })
	// The credit-generation timers re-arm forever, so run to a deadline
	// comfortably past the last injection plus reassembly timeouts.
	s.RunUntil(3 * sim.Millisecond)

	total := 0
	for src := range recs {
		total += recs[src].delivered
	}
	if total == 0 {
		t.Fatal("nothing delivered")
	}
	if sd.ReasmTimeouts == 0 && fab.Drops() > 0 {
		t.Logf("note: %d fabric drops, %d reassembly timeouts", fab.Drops(), sd.ReasmTimeouts)
	}
}
