// Package queueing implements the M/D/1 discrete queueing model of §4.2.1,
// used as the analytical reference for Fabric Element link-queue behaviour:
// Poisson cell arrivals at rate 1/fs per fabric-cell-time, deterministic
// discharge of one cell per fabric-cell-time.
package queueing

import (
	"fmt"
	"math"
)

// MD1 models an M/D/1 queue with service time 1 and arrival rate Rho < 1.
type MD1 struct {
	Rho float64
}

// NewMD1 returns the model for a link at the given utilization (1/fs in the
// paper's terms). Utilization must be in (0, 1) for a stable queue.
func NewMD1(rho float64) (*MD1, error) {
	if rho <= 0 || rho >= 1 {
		return nil, fmt.Errorf("queueing: M/D/1 requires 0 < rho < 1, got %v", rho)
	}
	return &MD1{Rho: rho}, nil
}

// poissonPMF returns e^-rho * rho^k / k! computed stably.
func poissonPMF(rho float64, k int) float64 {
	logp := -rho + float64(k)*math.Log(rho) - lgammaInt(k+1)
	return math.Exp(logp)
}

func lgammaInt(n int) float64 {
	v, _ := math.Lgamma(float64(n))
	return v
}

// QueuePMF returns P(Q = n) for n in [0, max], the stationary distribution
// of the number of customers in the system at departure epochs (which, by
// PASTA, equals the time-stationary distribution for M/D/1). It uses the
// classical embedded-Markov-chain recursion:
//
//	p_{n+1} = ( p_n - p_0*a_n - sum_{k=1..n} p_k * a_{n-k+1} ) / a_0
//
// where a_k is the Poisson probability of k arrivals during one service.
func (m *MD1) QueuePMF(max int) []float64 {
	rho := m.Rho
	a := make([]float64, max+2)
	for k := range a {
		a[k] = poissonPMF(rho, k)
	}
	p := make([]float64, max+1)
	p[0] = 1 - rho
	if max >= 1 {
		p[1] = (1 - rho) * (1 - a[0]) / a[0]
	}
	for n := 1; n < max; n++ {
		// p_{n+1} from balance: p_n = p_0 a_n? Use standard recursion:
		// p_{n+1} = [ p_n - (p_0 + p_1) a_n - sum_{k=2..n} p_k a_{n+1-k} ] / a_0
		s := p[n] - (p[0]+p[1])*a[n]
		for k := 2; k <= n; k++ {
			s -= p[k] * a[n+1-k]
		}
		v := s / a[0]
		if v < 0 {
			v = 0 // numerical underflow deep in the tail
		}
		p[n+1] = v
	}
	return p
}

// QueueCCDF returns P(Q >= n) for n in [0, max].
func (m *MD1) QueueCCDF(max int) []float64 {
	pmf := m.QueuePMF(max)
	out := make([]float64, max+1)
	// Tail beyond max is approximated geometrically from the last two
	// points so the CCDF does not artificially drop to zero.
	tail := 0.0
	if max >= 2 && pmf[max-1] > 0 {
		r := pmf[max] / pmf[max-1]
		if r > 0 && r < 1 {
			tail = pmf[max] * r / (1 - r)
		}
	}
	cum := tail
	for n := max; n >= 0; n-- {
		cum += pmf[n]
		out[n] = math.Min(cum, 1)
	}
	return out
}

// MeanQueue returns E[Q], the mean number in system, from the
// Pollaczek-Khinchine formula specialised to deterministic service:
// E[Q] = rho + rho^2 / (2 (1 - rho)).
func (m *MD1) MeanQueue() float64 {
	return m.Rho + m.Rho*m.Rho/(2*(1-m.Rho))
}

// MeanWait returns the mean waiting time (in service-time units) excluding
// service: W = rho / (2 (1 - rho)).
func (m *MD1) MeanWait() float64 {
	return m.Rho / (2 * (1 - m.Rho))
}

// TailDecayRate returns the asymptotic geometric decay rate r of the queue
// tail, i.e. P(Q >= n) ~ C * r^n. For M/D/1 it is the root of
// r = e^{-rho (1 - r)} ... solved for the relevant branch; the paper's
// approximation o(fs^{-2N}) corresponds to r ≈ rho^2 for fs = 1/rho.
func (m *MD1) TailDecayRate() float64 {
	// Solve z = exp(rho (z - 1)) for z > 1 (z = 1/r).
	rho := m.Rho
	z := 1 / (rho * rho) // paper's approximation as the starting point
	for i := 0; i < 100; i++ {
		f := math.Exp(rho*(z-1)) - z
		fp := rho*math.Exp(rho*(z-1)) - 1
		nz := z - f/fp
		if nz <= 1 {
			nz = (z + 1) / 2
		}
		if math.Abs(nz-z) < 1e-14*z {
			z = nz
			break
		}
		z = nz
	}
	return 1 / z
}

// PaperTailBound returns the paper's §4.2.1 approximation of the
// probability of queue build-up of size n on a link with fabric speed-up
// fs: o(fs^{-2n}), i.e. (1/fs)^{2n}.
func PaperTailBound(fs float64, n int) float64 {
	return math.Pow(1/fs, float64(2*n))
}
