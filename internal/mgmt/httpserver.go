package mgmt

import (
	"net/http"
	"time"
)

// HTTPTimeouts bounds how long one connection can hold server
// resources. The zero value of any field falls back to the default.
type HTTPTimeouts struct {
	ReadHeader time.Duration // slowloris guard: full header must arrive within this
	Read       time.Duration // whole request (headers + body)
	Write      time.Duration // response write budget; streaming handlers extend it per tick
	Idle       time.Duration // keep-alive connections with no request in flight
}

// DefaultHTTPTimeouts is the daemon's production posture: tight on
// headers (a stalled client cannot park a connection), generous on
// bodies (replay uploads) and responses (result downloads). Streaming
// endpoints outlive the write budget by extending their own deadline
// every poll tick via http.ResponseController.
var DefaultHTTPTimeouts = HTTPTimeouts{
	ReadHeader: 10 * time.Second,
	Read:       2 * time.Minute,
	Write:      2 * time.Minute,
	Idle:       2 * time.Minute,
}

// NewHTTPServer builds stardustd's http.Server with every connection
// timeout set — a bare &http.Server{} has none, so one slow or stalled
// client per goroutine could hold connections forever.
func NewHTTPServer(addr string, h http.Handler, t HTTPTimeouts) *http.Server {
	def := func(d, fallback time.Duration) time.Duration {
		if d <= 0 {
			return fallback
		}
		return d
	}
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: def(t.ReadHeader, DefaultHTTPTimeouts.ReadHeader),
		ReadTimeout:       def(t.Read, DefaultHTTPTimeouts.Read),
		WriteTimeout:      def(t.Write, DefaultHTTPTimeouts.Write),
		IdleTimeout:       def(t.Idle, DefaultHTTPTimeouts.Idle),
	}
}
