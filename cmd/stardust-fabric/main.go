// Command stardust-fabric runs the cell-fabric experiments: the Fig 9
// latency/queue distributions (slotted model), the topology-faithful
// per-link fabric's load-balance (linkload) and failure-recovery
// (failures) scenarios, the sharded-engine scaling (parscale) and
// fail/heal (parheal) scenarios, and the distributed-runtime sweep
// (distscale), and the telemetry pair: record (write a durable STREC1
// trace of a sharded run) and replay (re-drive the fabric from a trace as
// a digital twin and report divergence). Each instance is independent, so
// -workers=N runs sweeps in parallel; parscale/parheal additionally split
// one instance across -shards event loops, or across real peer processes
// with -peers/-join.
package main

import (
	"flag"
	"fmt"

	"stardust/internal/distsim"
	"stardust/internal/engine"
	_ "stardust/internal/scenarios"
)

func main() {
	// Before anything else: a forked peer child (-exp distscale, devnet)
	// re-executes this binary and must branch into the peer loop here.
	distsim.MaybeRunPeer()
	exp := flag.String("exp", "fig9", "experiment: fig9, linkload, failures, parscale, parheal, distscale, graphload, collective, openloop, record, replay")
	timings := flag.Bool("partimings", false, "parscale: report events/sec (total and per core) and speedup vs one shard (nondeterministic output)")
	hotspot := flag.Float64("hotspot", 1, "parscale: boost factor for the first quarter of the FAs (>1 = skewed matrix)")
	rebalance := flag.Bool("rebalance", false, "parscale: enable adaptive shard rebalancing (deterministic output is unchanged)")
	parshards := flag.Int("parshards", 0, "parscale: explicit shards parameter — also reports the per-shard event split (0 = the -shards flag)")
	scale := flag.Int("scale", 4, "fig9: scale divisor of the 256-FA topology (1 = paper scale)")
	util := flag.Float64("util", 0, "fig9: run a single utilization instead of the paper's set")
	dist := flag.Bool("dist", false, "fig9: dump the full latency/queue distributions (TSV)")
	k := flag.Int("k", 8, "linkload/failures: fat-tree K sizing the Clos")
	mode := flag.String("mode", "both", "linkload: spray, ecmp or both")
	failN := flag.Int("fail", 4, "failures: number of random links to kill")
	failMs := flag.Int("failat", 10, "failures: failure time in ms after warmup")
	traceOut := flag.String("traceout", "", "record: file to write the STREC1 stream to")
	traceIn := flag.String("tracein", "", "replay: recorded stream file (empty = record one inline)")
	expectZero := flag.Bool("expectzero", false, "replay: fail the run unless it reports zero divergence")
	failLink := flag.String("faillink", "", "replay: topology links to fail during the replay (comma list, the what-if knob)")
	verifyPeers := flag.String("verifypeers", "", "record: comma list of peer-process counts to fork and verify stream byte-identity against")
	eng := engine.AddFlags(flag.CommandLine)
	flag.Parse()

	var job engine.Job
	switch *exp {
	case "linkload":
		job = engine.Job{Scenario: "fabric/linkload", Params: engine.Params{
			"k": fmt.Sprint(*k), "mode": *mode,
		}}
	case "failures":
		job = engine.Job{Scenario: "fabric/failures", Params: engine.Params{
			"k": fmt.Sprint(*k), "fail": fmt.Sprint(*failN), "fail_ms": fmt.Sprint(*failMs),
		}}
	case "parscale":
		job = engine.Job{Scenario: "fabric/parscale", Params: engine.Params{
			"k": fmt.Sprint(*k), "timings": fmt.Sprint(*timings),
			"hotspot": fmt.Sprint(*hotspot), "rebalance": fmt.Sprint(*rebalance),
			"shards": fmt.Sprint(*parshards),
		}}
	case "parheal":
		job = engine.Job{Scenario: "fabric/parheal", Params: engine.Params{
			"k": fmt.Sprint(*k), "fail": fmt.Sprint(*failN),
		}}
	case "distscale":
		job = engine.Job{Scenario: "fabric/distscale", Params: engine.Params{
			"k": fmt.Sprint(*k),
		}}
	case "graphload":
		m := *mode
		if m == "both" {
			m = "spray,ecmp"
		}
		job = engine.Job{Scenario: "fabric/graphload", Params: engine.Params{"mode": m}}
	case "collective", "openloop":
		job = engine.Job{Scenario: "fabric/" + *exp, Params: engine.Params{
			"k": fmt.Sprint(*k),
		}}
	case "record":
		job = engine.Job{Scenario: "trace/record", Params: engine.Params{
			"k": fmt.Sprint(*k), "out": *traceOut, "peers": *verifyPeers,
		}}
	case "replay":
		job = engine.Job{Scenario: "trace/replay", Params: engine.Params{
			"k": fmt.Sprint(*k), "in": *traceIn,
			"expect_zero": fmt.Sprint(*expectZero), "fail_link": *failLink,
		}}
	default:
		p := engine.Params{
			"scale": fmt.Sprint(*scale),
			"dist":  fmt.Sprint(*dist),
		}
		if *util > 0 {
			p["utils"] = fmt.Sprint(*util)
		}
		job = engine.Job{Scenario: "fabric/" + *exp, Params: p}
	}
	engine.Main(eng, []engine.Job{job})
}
