package mgmt

import (
	"math/rand"
	"testing"

	"stardust/internal/sim"
	"stardust/internal/topo"
)

// Multi-link concurrent failure/recovery: interleave failures and
// recoveries across many links — including overlaps inside the
// withdrawal-propagation window — and assert the management event bus
// observes one consistent sequence: strictly increasing seq, causally
// ordered times, a withdrawal exactly ReachDelay after every FA-link
// state change, and link accounting that matches the final fabric state.
func TestConcurrentFailureRecoveryEventOrdering(t *testing.T) {
	s, fab, ctl := newManagedFabric(t, Config{ScrapeEvery: 200 * sim.Microsecond})
	rng := rand.New(rand.NewSource(23))

	// Schedule 12 random failures, each healing after a random delay that
	// straddles ReachDelay (some recoveries land before the withdrawal of
	// their own failure, some after).
	type change struct {
		at   sim.Time
		link int
		up   bool
	}
	var want []change
	used := make(map[int]bool)
	for i := 0; i < 12; i++ {
		link := rng.Intn(fab.NumLinks())
		if used[link] {
			continue
		}
		used[link] = true
		at := sim.Time(rng.Intn(300)) * sim.Microsecond
		heal := at + sim.Time(10+rng.Intn(100))*sim.Microsecond
		want = append(want, change{at, link, false}, change{heal, link, true})
		lk := link
		s.At(at, func() { fab.FailLink(lk) })
		s.At(heal, func() { fab.RestoreLink(lk) })
	}
	s.RunUntil(2 * sim.Millisecond)

	evs := ctl.Bus().Since(0, 0)
	if len(evs) == 0 {
		t.Fatal("no events observed")
	}
	var lastSeq uint64
	var lastTime sim.Time = -1
	downs, ups, reach := 0, 0, 0
	state := make(map[int]bool) // link -> down, per the event stream
	for _, e := range evs {
		if e.Seq <= lastSeq {
			t.Fatalf("seq not strictly increasing: %d after %d", e.Seq, lastSeq)
		}
		lastSeq = e.Seq
		if e.Time < lastTime {
			t.Fatalf("event time went backwards: %v after %v (seq %d)", e.Time, lastTime, e.Seq)
		}
		lastTime = e.Time
		switch e.Kind {
		case EventLinkDown:
			if state[e.Link] {
				t.Fatalf("link %d failed twice without recovery (seq %d)", e.Link, e.Seq)
			}
			state[e.Link] = true
			downs++
		case EventLinkUp:
			if !state[e.Link] {
				t.Fatalf("link %d recovered while up (seq %d)", e.Link, e.Seq)
			}
			state[e.Link] = false
			ups++
		case EventReachUpdate:
			reach++
		}
	}
	if downs != len(want)/2 || ups != len(want)/2 {
		t.Fatalf("saw %d downs / %d ups, want %d each", downs, ups, len(want)/2)
	}
	for link, down := range state {
		if down {
			t.Fatalf("event stream leaves link %d down after all heals", link)
		}
	}

	// Every FA-link state change propagates one withdrawal, exactly
	// ReachDelay later; FE1-FE2 changes update the spine directly.
	faChanges := 0
	pending := make(map[sim.Time]int) // due time -> count
	for _, e := range evs {
		switch e.Kind {
		case EventLinkDown, EventLinkUp:
			if fab.Topo.Links[e.Link].A.Kind == topo.KindFA {
				faChanges++
				pending[e.Time+fab.Cfg.ReachDelay]++
			}
		case EventReachUpdate:
			if pending[e.Time] == 0 {
				t.Fatalf("reach update at %v matches no scheduled withdrawal", e.Time)
			}
			pending[e.Time]--
		}
	}
	if reach != faChanges {
		t.Fatalf("saw %d reach updates for %d FA-link changes", reach, faChanges)
	}

	// The controller's accounting agrees with the stream and the fabric.
	st := ctl.Stats()
	if st.LinkFailures != uint64(downs) || st.LinkRecovers != uint64(ups) {
		t.Fatalf("stats disagree with stream: %+v", st)
	}
	if st.LinksDown != 0 {
		t.Fatalf("LinksDown=%d after all heals", st.LinksDown)
	}
	if st.Unreachable != 0 {
		t.Fatalf("reachability holes after healing: %d", st.Unreachable)
	}
}
