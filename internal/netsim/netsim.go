// Package netsim is the packet-level network simulator used for the
// protocol comparison of §6.3 (Fig 10) — the role htsim plays in the
// paper. It provides serialization queues with tail-drop and ECN marking,
// propagation pipes, and a k-ary fat-tree plumbing with per-flow ECMP path
// selection. Transport endpoints (TCP NewReno, DCTCP, DCQCN, MPTCP and the
// Stardust Fabric Adapter model) live in package tcp and netsim's
// stardust.go.
//
// The packet hot path is allocation-free in steady state: packets come
// from a shared free list (NewPacket/Release), queues buffer them in
// ring buffers that reuse their backing arrays under sustained load, and
// queue draining and pipe propagation schedule pre-bound sim.Actions
// instead of closures.
package netsim

import (
	"fmt"
	"sync"

	"stardust/internal/sim"
)

// Bps is a link rate in bits per second.
type Bps float64

// Handler consumes packets; queues, pipes and endpoints all implement it.
type Handler interface {
	Receive(p *Packet)
}

// Packet is the unit moved through the simulated network. A packet carries
// its forward route and advances itself hop by hop.
//
// Packets are pooled: obtain them with NewPacket and hand them back with
// Release at the end of their life (terminal endpoints and dropping queues
// do this). A released packet must not be touched again.
type Packet struct {
	Size int   // bytes on the wire
	Seq  int64 // first byte carried (data) / echoed cumulative ack (ACK)
	Ack  bool
	CE   bool // congestion-experienced mark (set by queues)
	Echo bool // ECN echo on an ACK
	Flow any  // owning endpoint state (opaque to the network)
	// Fabric-cell addressing, used only when the packet is a cell crossing
	// a per-link fabric (internal/fabric): Dst is the destination Fabric
	// Adapter and Down latches once the cell has started descending so
	// up/down routing cannot valley. Zero for ordinary packets.
	Dst   int32
	Down  bool
	route []Handler
	hop   int
}

// packetPool is the shared free list. It is safe for concurrent use, so
// simulations running in parallel worker goroutines share one pool.
var packetPool = sync.Pool{New: func() any { return new(Packet) }}

// NewPacket returns a zeroed packet from the shared free list.
func NewPacket() *Packet { return packetPool.Get().(*Packet) }

// Release zeroes p and returns it to the free list. The caller must hold
// the only live reference.
func (p *Packet) Release() {
	*p = Packet{}
	packetPool.Put(p)
}

// SetRoute installs the forward route and resets the hop cursor.
func (p *Packet) SetRoute(route []Handler) {
	p.route = route
	p.hop = 0
}

// SendOn advances the packet to its next hop. Packets that run off the end
// of their route are dropped (the route must terminate in an endpoint that
// does not call SendOn).
func (p *Packet) SendOn() {
	if p.hop >= len(p.route) {
		return
	}
	h := p.route[p.hop]
	p.hop++
	h.Receive(p)
}

// Act implements sim.Action so pipes and queues can schedule a packet's
// next hop without allocating a closure.
func (p *Packet) Act(uint64) { p.SendOn() }

// ring is a growable circular buffer. Unlike an append-and-shift slice it
// reuses its backing array under sustained load: the array only grows
// when more items are simultaneously queued than ever before. Vacated
// slots are zeroed so pooled pointers do not linger past their pop.
type ring[T any] struct {
	buf  []T
	head int
	n    int
}

func (r *ring[T]) len() int { return r.n }

func (r *ring[T]) push(v T) {
	if r.n == len(r.buf) {
		r.grow()
	}
	i := r.head + r.n
	if i >= len(r.buf) {
		i -= len(r.buf)
	}
	r.buf[i] = v
	r.n++
}

// at returns the i-th oldest item (0 = head) without removing it.
func (r *ring[T]) at(i int) (v T) {
	if i < 0 || i >= r.n {
		return v
	}
	j := r.head + i
	if j >= len(r.buf) {
		j -= len(r.buf)
	}
	return r.buf[j]
}

// peek returns the oldest item without removing it, or the zero value.
func (r *ring[T]) peek() (v T) {
	if r.n == 0 {
		return v
	}
	return r.buf[r.head]
}

// pop removes and returns the oldest item, or the zero value.
func (r *ring[T]) pop() (v T) {
	if r.n == 0 {
		return v
	}
	v, r.buf[r.head] = r.buf[r.head], v
	r.head++
	if r.head == len(r.buf) {
		r.head = 0
	}
	r.n--
	return v
}

// popTail removes and returns the newest item, or the zero value.
func (r *ring[T]) popTail() (v T) {
	if r.n == 0 {
		return v
	}
	i := r.head + r.n - 1
	if i >= len(r.buf) {
		i -= len(r.buf)
	}
	v, r.buf[i] = r.buf[i], v
	r.n--
	return v
}

func (r *ring[T]) grow() {
	buf := make([]T, max(16, 2*len(r.buf)))
	for i := 0; i < r.n; i++ {
		j := r.head + i
		if j >= len(r.buf) {
			j -= len(r.buf)
		}
		buf[i] = r.buf[j]
	}
	r.buf = buf
	r.head = 0
}

// pktRing is the packet instantiation used by queues and VOQs.
type pktRing = ring[*Packet]

// Queue is a store-and-forward output queue draining at a fixed rate, with
// tail-drop at MaxBytes and optional ECN marking above ECNThreshBytes
// (instantaneous queue, DCTCP-style).
type Queue struct {
	Name           string
	Sim            *sim.Simulator
	Rate           Bps
	MaxBytes       int
	ECNThreshBytes int // 0 disables marking

	ring  pktRing
	cur   *Packet // packet currently serializing onto the wire
	bytes int
	busy  bool

	// OnDrop, when non-nil, observes every tail-dropped packet just
	// before it is released — the hook that lets a harness account the
	// fate of every packet it injected (conservation invariants).
	OnDrop func(*Packet)

	// Stats
	Drops     uint64
	Marks     uint64
	Forwarded uint64
	FwdBytes  uint64 // bytes serialized onto the wire (per-link load evidence)
	PeakBytes int
}

// NewQueue builds a queue bound to the simulator.
func NewQueue(s *sim.Simulator, name string, rate Bps, maxBytes int, ecnThresh int) *Queue {
	if rate <= 0 || maxBytes <= 0 {
		panic("netsim: queue needs positive rate and capacity")
	}
	return &Queue{Name: name, Sim: s, Rate: rate, MaxBytes: maxBytes, ECNThreshBytes: ecnThresh}
}

func (q *Queue) txTime(bytes int) sim.Time {
	return sim.Time(float64(bytes*8) / float64(q.Rate) * float64(sim.Second))
}

// Bytes returns the current occupancy.
func (q *Queue) Bytes() int { return q.bytes }

// Receive implements Handler.
func (q *Queue) Receive(p *Packet) {
	if q.bytes+p.Size > q.MaxBytes {
		q.Drops++
		if q.OnDrop != nil {
			q.OnDrop(p)
		}
		p.Release()
		return
	}
	if q.ECNThreshBytes > 0 && q.bytes >= q.ECNThreshBytes {
		p.CE = true
		q.Marks++
	}
	q.bytes += p.Size
	if q.bytes > q.PeakBytes {
		q.PeakBytes = q.bytes
	}
	if q.busy {
		q.ring.push(p)
		return
	}
	q.busy = true
	q.cur = p
	q.Sim.AfterAction(q.txTime(p.Size), q, 0)
}

// Act implements sim.Action: the current packet finished serializing.
func (q *Queue) Act(uint64) {
	p := q.cur
	q.cur = nil
	q.bytes -= p.Size
	q.Forwarded++
	q.FwdBytes += uint64(p.Size)
	p.SendOn() // p may be released downstream; do not touch it again
	if next := q.ring.pop(); next != nil {
		q.cur = next
		q.Sim.AfterAction(q.txTime(next.Size), q, 0)
		return
	}
	q.busy = false
}

// Pipe is a pure propagation delay.
type Pipe struct {
	Sim   *sim.Simulator
	Delay sim.Time
}

// NewPipe builds a pipe.
func NewPipe(s *sim.Simulator, delay sim.Time) *Pipe { return &Pipe{Sim: s, Delay: delay} }

// Receive implements Handler.
func (p *Pipe) Receive(pkt *Packet) {
	p.Sim.AfterAction(p.Delay, pkt, 0)
}

// LanePipe is a propagation delay that delivers onto an explicit event
// lane of a lane scheduler — the sharded counterpart of Pipe. With the
// owning shard's Simulator as the scheduler it is an intra-shard hop; with
// a parsim cross-shard port it hands the packet to another event loop. In
// both cases the packet's arrival is ordered by its (time, lane) key, so a
// sharded simulation executes the same arrival order at any shard count.
// The endpoint the packet continues to (its next route hop) is pinned to
// the scheduler's shard.
type LanePipe struct {
	Sched sim.LaneScheduler
	Delay sim.Time
	Lane  int32
}

// Receive implements Handler.
func (p *LanePipe) Receive(pkt *Packet) {
	p.Sched.AtLane(p.Sched.Now()+p.Delay, p.Lane, pkt, 0)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(*Packet)

// Receive implements Handler.
func (f HandlerFunc) Receive(p *Packet) { f(p) }

// Counter is a terminal handler counting packets and bytes (a debugging
// sink). It releases delivered packets back to the free list.
type Counter struct {
	Packets uint64
	Bytes   uint64
}

// Receive implements Handler.
func (c *Counter) Receive(p *Packet) {
	c.Packets++
	c.Bytes += uint64(p.Size)
	p.Release()
}

func (q *Queue) String() string {
	return fmt.Sprintf("queue %s: %dB queued, %d fwd, %d drops, %d marks", q.Name, q.bytes, q.Forwarded, q.Drops, q.Marks)
}
