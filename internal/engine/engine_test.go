package engine

import (
	"bytes"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// Concurrency counters for test/parallel (registered in init below).
var parPeak, parCur atomic.Int32

func init() {
	Register(Scenario{
		Name: "test/parallel",
		Desc: "records concurrency",
		Variants: func(p Params) []Params {
			out := make([]Params, 8)
			for i := range out {
				out[i] = p.With("i", fmt.Sprint(i))
			}
			return out
		},
		Run: func(c Context) (Result, error) {
			n := parCur.Add(1)
			for {
				old := parPeak.Load()
				if n <= old || parPeak.CompareAndSwap(old, n) {
					break
				}
			}
			// Linger until another instance overlaps (or a deadline, so a
			// genuinely serial runner still terminates and fails the test).
			deadline := time.Now().Add(200 * time.Millisecond)
			for parPeak.Load() < 2 && time.Now().Before(deadline) {
				runtime.Gosched()
			}
			parCur.Add(-1)
			return Result{}, nil
		},
	})
	Register(Scenario{
		Name:     "test/echo",
		Desc:     "echoes its parameter",
		Defaults: Params{"x": "1"},
		Run: func(c Context) (Result, error) {
			var r Result
			r.Add("x", float64(c.Params.Int("x", 0)), "")
			r.Add("seed", float64(c.Seed), "")
			r.Text = fmt.Sprintf("x=%d seed=%d\n", c.Params.Int("x", 0), c.Seed)
			return r, nil
		},
	})
	Register(Scenario{
		Name:     "test/sweep",
		Desc:     "expands into one instance per point",
		Defaults: Params{"points": "3"},
		Variants: func(p Params) []Params {
			n := p.Int("points", 1)
			out := make([]Params, n)
			for i := range out {
				out[i] = p.With("point", fmt.Sprint(i))
			}
			return out
		},
		Run: func(c Context) (Result, error) {
			i := c.Params.Int("point", -1)
			var r Result
			r.Add("point", float64(i), "")
			r.Text = fmt.Sprintf("point %d\n", i)
			return r, nil
		},
	})
	Register(Scenario{
		Name: "test/fail",
		Desc: "always errors",
		Run: func(c Context) (Result, error) {
			return Result{}, fmt.Errorf("deliberate failure")
		},
	})
	Register(Scenario{
		Name: "test/panic",
		Desc: "always panics",
		Run: func(c Context) (Result, error) {
			panic("deliberate panic")
		},
	})
}

func TestParamsAccessors(t *testing.T) {
	p := Params{"i": "42", "f": "2.5", "b": "true", "s": "hi", "list": "1,2, 3", "bad": "x"}
	if got := p.Int("i", 0); got != 42 {
		t.Fatalf("Int = %d", got)
	}
	if got := p.Int("bad", 7); got != 7 {
		t.Fatalf("Int fallback = %d", got)
	}
	if got := p.Int("missing", 7); got != 7 {
		t.Fatalf("Int missing = %d", got)
	}
	if got := p.Float("f", 0); got != 2.5 {
		t.Fatalf("Float = %v", got)
	}
	if !p.Bool("b", false) {
		t.Fatal("Bool")
	}
	if got := p.Str("s", ""); got != "hi" {
		t.Fatalf("Str = %q", got)
	}
	if got := p.Ints("list", nil); len(got) != 3 || got[2] != 3 {
		t.Fatalf("Ints = %v", got)
	}
	if got := p.Floats("missing", []float64{9}); len(got) != 1 || got[0] != 9 {
		t.Fatalf("Floats default = %v", got)
	}
	if got := (Params{"b": "2", "a": "1"}).String(); got != "a=1 b=2" {
		t.Fatalf("String = %q", got)
	}
}

func TestParamsMergeDoesNotMutate(t *testing.T) {
	base := Params{"a": "1"}
	merged := base.Merge(Params{"a": "2", "b": "3"})
	if base["a"] != "1" || merged["a"] != "2" || merged["b"] != "3" {
		t.Fatalf("base=%v merged=%v", base, merged)
	}
}

func TestRegistryLookupAndMatch(t *testing.T) {
	if _, err := Lookup("test/echo"); err != nil {
		t.Fatal(err)
	}
	if _, err := Lookup("nope"); err == nil {
		t.Fatal("lookup of unknown scenario succeeded")
	}
	names, err := Match("test")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) < 4 {
		t.Fatalf("prefix match = %v", names)
	}
	names, err = Match("test/ec*")
	if err != nil || len(names) != 1 || names[0] != "test/echo" {
		t.Fatalf("glob match = %v, %v", names, err)
	}
	if _, err := Match("zzz*"); err == nil {
		t.Fatal("match of nothing succeeded")
	}
}

func TestRegisterRejectsDuplicates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	Register(Scenario{Name: "test/echo", Run: func(Context) (Result, error) { return Result{}, nil }})
}

func runBytes(t *testing.T, opts Options, jobs []Job) []byte {
	t.Helper()
	var buf bytes.Buffer
	opts.Out = &buf
	if _, err := Run(opts, jobs); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// The core engine guarantee: identical jobs and seed produce a
// byte-identical output stream, at any worker count and in any format.
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	jobs := []Job{
		{Scenario: "test/sweep", Params: Params{"points": "8"}},
		{Scenario: "test/echo", Params: Params{"x": "5"}},
	}
	for _, format := range []string{"text", "json", "csv"} {
		a := runBytes(t, Options{Workers: 1, Seed: 3, Format: format}, jobs)
		b := runBytes(t, Options{Workers: 8, Seed: 3, Format: format}, jobs)
		if !bytes.Equal(a, b) {
			t.Fatalf("format %s: workers=1 and workers=8 differ:\n%s\n----\n%s", format, a, b)
		}
		c := runBytes(t, Options{Workers: 8, Seed: 3, Format: format}, jobs)
		if !bytes.Equal(b, c) {
			t.Fatalf("format %s: repeat run differs", format)
		}
	}
}

func TestRunVariantExpansion(t *testing.T) {
	results, err := Run(Options{Workers: 4}, []Job{{Scenario: "test/sweep", Params: Params{"points": "5"}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 5 {
		t.Fatalf("got %d instances, want 5", len(results))
	}
	for i, r := range results {
		if got := r.Params.Int("point", -1); got != i {
			t.Fatalf("instance %d has point %d (order not preserved)", i, got)
		}
	}
}

func TestRunSeedPlumbing(t *testing.T) {
	results, err := Run(Options{Seed: 42}, []Job{{Scenario: "test/echo"}, {Scenario: "test/echo", Seed: 7}})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Seed != 42 || results[1].Seed != 7 {
		t.Fatalf("seeds = %d, %d", results[0].Seed, results[1].Seed)
	}
}

func TestRunErrorsAndPanicsAreIsolated(t *testing.T) {
	var buf bytes.Buffer
	results, err := Run(Options{Out: &buf}, []Job{
		{Scenario: "test/fail"},
		{Scenario: "test/panic"},
		{Scenario: "test/echo"},
	})
	if err == nil {
		t.Fatal("expected an error")
	}
	if len(results) != 3 {
		t.Fatalf("got %d results", len(results))
	}
	if results[0].Err == nil || results[1].Err == nil || results[2].Err != nil {
		t.Fatalf("error placement wrong: %v / %v / %v", results[0].Err, results[1].Err, results[2].Err)
	}
	if !strings.Contains(results[1].Err.Error(), "panicked") {
		t.Fatalf("panic not converted: %v", results[1].Err)
	}
	if !strings.Contains(buf.String(), "ERROR") {
		t.Fatalf("text output missing error marker:\n%s", buf.String())
	}
}

func TestRunUnknownScenario(t *testing.T) {
	if _, err := Run(Options{}, []Job{{Scenario: "does/not/exist"}}); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

func TestRunActuallyParallel(t *testing.T) {
	parPeak.Store(0)
	if _, err := Run(Options{Workers: 4}, []Job{{Scenario: "test/parallel"}}); err != nil {
		t.Fatal(err)
	}
	if parPeak.Load() < 2 {
		t.Fatalf("peak concurrency %d, want >= 2", parPeak.Load())
	}
}

func TestEmitCSVShape(t *testing.T) {
	out := runBytes(t, Options{Format: "csv"}, []Job{{Scenario: "test/echo"}})
	lines := strings.Split(strings.TrimSpace(string(out)), "\n")
	if len(lines) != 3 { // header + two metrics
		t.Fatalf("csv lines = %d:\n%s", len(lines), out)
	}
	if lines[0] != "scenario,params,seed,metric,value,unit" {
		t.Fatalf("csv header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "test/echo,x=1,1,x,1,") {
		t.Fatalf("csv row = %q", lines[1])
	}
}

func TestEmitUnknownFormat(t *testing.T) {
	var buf bytes.Buffer
	if _, err := Run(Options{Out: &buf, Format: "yaml"}, []Job{{Scenario: "test/echo"}}); err == nil {
		t.Fatal("unknown format accepted")
	}
}

func TestParamDocs(t *testing.T) {
	sc := Scenario{
		Name:     "x",
		Defaults: Params{"b": "2", "a": "1"},
		Docs:     map[string]string{"a": "the a knob"},
	}
	docs := sc.ParamDocs()
	if len(docs) != 2 {
		t.Fatalf("want one ParamDoc per default, got %d", len(docs))
	}
	if docs[0].Key != "a" || docs[1].Key != "b" {
		t.Fatalf("docs not sorted by key: %v", docs)
	}
	if docs[0].Desc != "the a knob" || docs[0].Default != "1" {
		t.Fatalf("doc/default not carried: %+v", docs[0])
	}
	if docs[1].Desc != "" {
		t.Fatalf("undocumented param grew a desc: %+v", docs[1])
	}
}

func TestRegisterRejectsDocWithoutDefault(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("registering a doc for a parameter with no default must panic")
		}
	}()
	Register(Scenario{
		Name:     "test/bad-docs",
		Docs:     map[string]string{"nope": "typo"},
		Run:      func(Context) (Result, error) { return Result{}, nil },
		Defaults: Params{"k": "1"},
	})
}

func TestWriteRegistryShowsDocs(t *testing.T) {
	var buf bytes.Buffer
	WriteRegistry(&buf)
	out := buf.String()
	if !strings.Contains(out, "test/echo") {
		t.Fatal("-list output misses registered scenarios")
	}
	if !strings.Contains(out, "x=1") {
		t.Fatal("-list output misses parameter defaults")
	}
}
