package parsim

import (
	"testing"

	"stardust/internal/sim"
)

// ringNode is a toy sharded model: tokens hop around a ring of nodes, one
// directed lane per edge, and every node folds the arrival order of the
// tokens it sees into a digest. Because arrivals are lane-ordered, the
// digests must be identical for every partitioning of the ring.
type ringNode struct {
	idx    int
	shard  int
	eng    *Engine
	nodes  []*ringNode
	assign []int
	delay  sim.Time
	digest uint64
	seen   int
	ttl    map[uint64]int // per token: remaining hops
}

// Act receives token arg and forwards it one step around the ring.
func (n *ringNode) Act(arg uint64) {
	n.seen++
	n.digest = n.digest*1099511628211 + arg + uint64(n.idx)
	if n.ttl[arg] == 0 {
		return
	}
	n.ttl[arg]--
	next := n.nodes[(n.idx+1)%len(n.nodes)]
	sched := n.eng.Shard(n.shard).To(n.assign[next.idx])
	sched.AtLane(sched.Now()+n.delay, int32(n.idx), next, arg)
}

// runRing circulates tokens over `nodes` ring nodes split across shards
// and returns the per-node digests.
func runRing(t *testing.T, shards, nodeCount int, serial bool) []uint64 {
	t.Helper()
	const look = sim.Microsecond
	eng := New(Config{Shards: shards, Lookahead: look, Serial: serial})
	assign := make([]int, nodeCount)
	for i := range assign {
		assign[i] = i * shards / nodeCount
	}
	nodes := make([]*ringNode, nodeCount)
	for i := range nodes {
		nodes[i] = &ringNode{
			idx: i, shard: assign[i], eng: eng,
			nodes: nodes, assign: assign, delay: look,
			ttl: make(map[uint64]int), // per-node budget: no cross-shard state
		}
	}
	// Seed tokens at staggered instants; every node holds a per-token hop
	// budget so tokens eventually park without any shared countdown.
	const hops = 40
	for tok := uint64(0); tok < 8; tok++ {
		for i := range nodes {
			nodes[i].ttl[tok] = hops
		}
		start := int(tok) % nodeCount
		nodes[start].eng.Shard(assign[start]).Sim().AtLane(
			sim.Time(tok)*look/3, int32((start+nodeCount-1)%nodeCount), nodes[start], tok)
	}
	eng.Run(sim.Time(hops+20) * look)
	out := make([]uint64, nodeCount)
	for i, n := range nodes {
		out[i] = n.digest
	}
	return out
}

// The flagship property: the same model produces byte-identical state at
// every shard count, parallel or serial.
func TestRingDeterministicAcrossShardCounts(t *testing.T) {
	ref := runRing(t, 1, 6, false)
	for _, shards := range []int{2, 3, 4, 6} {
		for _, serial := range []bool{false, true} {
			got := runRing(t, shards, 6, serial)
			for i := range ref {
				if got[i] != ref[i] {
					t.Fatalf("shards=%d serial=%v: node %d digest %x, want %x",
						shards, serial, i, got[i], ref[i])
				}
			}
		}
	}
}

func TestEngineWindowsAndHooks(t *testing.T) {
	eng := New(Config{Shards: 2, Lookahead: 10 * sim.Nanosecond})
	var barriers []sim.Time
	eng.OnBarrier(func(now sim.Time) { barriers = append(barriers, now) })
	eng.Run(35 * sim.Nanosecond) // rounds up to 40: four windows
	if len(barriers) != 4 {
		t.Fatalf("%d barriers, want 4: %v", len(barriers), barriers)
	}
	for i, at := range barriers {
		if want := sim.Time(10*(i+1)) * sim.Nanosecond; at != want {
			t.Fatalf("barrier %d at %d, want %d", i, at, want)
		}
	}
	if eng.Now() != 40*sim.Nanosecond {
		t.Fatalf("Now = %d, want 40ns", eng.Now())
	}
	for i := 0; i < eng.Shards(); i++ {
		if got := eng.Shard(i).Sim().Now(); got != eng.Now() {
			t.Fatalf("shard %d clock %d, want %d", i, got, eng.Now())
		}
	}
}

// Controls run at window boundaries (rounded up), in registration order
// within a boundary, with InBarrier reporting true.
func TestEngineControls(t *testing.T) {
	eng := New(Config{Shards: 2, Lookahead: 10 * sim.Nanosecond})
	var got []string
	eng.At(15*sim.Nanosecond, func() { // rounds to 20
		if !eng.InBarrier() {
			t.Error("control ran outside barrier context")
		}
		got = append(got, "a@20")
		eng.At(eng.Now()+5*sim.Nanosecond, func() { got = append(got, "c@30") })
	})
	eng.At(20*sim.Nanosecond, func() { got = append(got, "b@20") })
	eng.Run(40 * sim.Nanosecond)
	want := []string{"a@20", "b@20", "c@30"}
	if len(got) != len(want) {
		t.Fatalf("controls %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("controls %v, want %v", got, want)
		}
	}
}

func TestRunUntilQuiet(t *testing.T) {
	eng := New(Config{Shards: 2, Lookahead: sim.Microsecond})
	fired := false
	eng.Shard(1).Sim().At(3*sim.Microsecond, func() { fired = true })
	end := eng.RunUntilQuiet(sim.Second)
	if !fired {
		t.Fatal("event did not fire")
	}
	if !eng.Quiet() {
		t.Fatal("engine not quiet after drain")
	}
	if end >= sim.Second/2 {
		t.Fatalf("drain ran to %d — RunUntilQuiet did not stop when quiet", end)
	}
}

// A cross-shard send that violates the lookahead must panic loudly rather
// than corrupt causality.
func TestPortLookaheadViolationPanics(t *testing.T) {
	eng := New(Config{Shards: 2, Lookahead: sim.Microsecond})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on lookahead violation")
		}
	}()
	p := Port{src: eng.Shard(0), dst: 1}
	p.AtLane(sim.Nanosecond, 0, sim.ActionFunc(func(uint64) {}), 0)
}
