package mgmt

import (
	"fmt"
	"math/rand"
	"sync"

	"stardust/internal/fabric"
	"stardust/internal/netsim"
	"stardust/internal/parsim"
	"stardust/internal/sim"
)

// FabricRunConfig sizes the daemon's live fabric: the topology, a
// synthetic background load, and an optional failure/recovery chaos
// schedule that keeps the event bus and the self-healing path exercised.
type FabricRunConfig struct {
	// K sizes the Clos via fabric.ClosFor (K-ary fat-tree edge).
	K int // default 4
	// Load is the offered load per FA as a fraction of its uplink
	// capacity.
	Load float64 // default 0.3
	// CellBytes is the synthetic cell size.
	CellBytes int // default 512
	// FailEvery, when > 0, fails one random healthy link every period.
	FailEvery sim.Time
	// HealAfter is how long a chaos-failed link stays down.
	HealAfter sim.Time // default 5ms
	// Seed feeds the traffic and chaos RNGs.
	Seed int64 // default 1
	// Shards, when > 1, runs the fabric on a parsim engine partitioned
	// across that many event loops: telemetry scrapes and chaos run in
	// barrier context (quantized to window boundaries), so the run is
	// deterministic for any shard count > 1 at the same seed.
	Shards int
	// TransportHostsPer, when > 0, lays the sharded Stardust transport
	// over the fabric with that many hosts per FA, driven by a permutation
	// of long-running TCP flows instead of raw cell injectors, and scrapes
	// its counters at the window barrier (TransportMonitor). Forces the
	// sharded engine (Shards floors at 1).
	TransportHostsPer int
	// Controller configures the attached management plane.
	Controller Config
}

func (c FabricRunConfig) withDefaults() FabricRunConfig {
	if c.K == 0 {
		c.K = 4
	}
	if c.Load <= 0 {
		c.Load = 0.3
	}
	if c.CellBytes <= 0 {
		c.CellBytes = 512
	}
	if c.HealAfter <= 0 {
		c.HealAfter = 5 * sim.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// FabricRun is a continuously running fabric under management: the
// simulator, the fabric, its controller, a background traffic generator
// and the chaos schedule. The daemon advances it in steps from a single
// goroutine; Advance serializes callers.
type FabricRun struct {
	Cfg   FabricRunConfig
	Sim   *sim.Simulator
	Fab   *fabric.Net
	Ctl   *Controller
	Eng   *parsim.Engine             // non-nil when the run is sharded
	Net   *netsim.ShardedStardustNet // non-nil when the transport overlay is on
	Trans *TransportMonitor          // barrier-scraped transport telemetry

	mu  sync.Mutex
	rng *rand.Rand
}

// NewFabricRun builds the fabric, attaches the controller, and schedules
// traffic and chaos. Nothing runs until Advance is called.
func NewFabricRun(cfg FabricRunConfig) (*FabricRun, error) {
	cfg = cfg.withDefaults()
	cl, err := fabric.ClosFor(cfg.K)
	if err != nil {
		return nil, err
	}
	fcfg := fabric.DefaultConfig(netsim.Bps(10e9), sim.Microsecond, cfg.Seed)
	if cfg.TransportHostsPer > 0 {
		// The transport's credit schedulers run 3% over the host rate, so
		// the fabric needs rate headroom over the edge (§6.2 uses 1.05) or
		// credit bursts slowly flood the trunks — same margin the htsim
		// testbed and benchmarks give their fabrics.
		fcfg.LinkRate = netsim.Bps(float64(fcfg.LinkRate) * 1.05)
	}

	var (
		s   *sim.Simulator
		fab *fabric.Net
		eng *parsim.Engine
	)
	if cfg.Shards > 1 || cfg.TransportHostsPer > 0 {
		// The transport overlay always runs on the engine (its barrier is
		// what makes the scrape race-free), even at one shard.
		shards := cfg.Shards
		if shards < 1 {
			shards = 1
		}
		eng = parsim.New(parsim.Config{Shards: shards, Lookahead: fcfg.LinkDelay})
		if fab, err = fabric.NewSharded(eng, fcfg, cl, nil); err != nil {
			return nil, err
		}
		s = fab.Sim
	} else {
		s = sim.New()
		if fab, err = fabric.New(s, fcfg, cl); err != nil {
			return nil, err
		}
	}
	r := &FabricRun{
		Cfg: cfg,
		Sim: s,
		Fab: fab,
		Eng: eng,
		rng: rand.New(rand.NewSource(cfg.Seed ^ 0x51d)),
	}
	if eng != nil {
		r.Ctl = AttachSharded(fab, cfg.Controller)
	} else {
		r.Ctl = Attach(fab, cfg.Controller)
	}
	if cfg.TransportHostsPer > 0 {
		// The transport overlay is the load source: TCP flows over the
		// sharded Stardust substrate instead of raw cell injectors.
		if err := r.buildTransport(cfg.TransportHostsPer); err != nil {
			return nil, err
		}
	} else {
		// Per-FA pacing: each FA offers Load×(uplink capacity), spread over
		// rotating destinations, as a self-rescheduling injection.
		perFA := cfg.Load * float64(cl.FAUplinks) * float64(fcfg.LinkRate)
		gap := sim.Time(float64(cfg.CellBytes*8) / perFA * float64(sim.Second))
		if gap < sim.Nanosecond {
			gap = sim.Nanosecond
		}
		for fa := 0; fa < cl.NumFA; fa++ {
			// Stagger starts so FAs do not inject in lockstep. The injector
			// lives on its FA's shard (sharded mode) or the solo loop.
			fab.NewInjector(fa, gap, cfg.CellBytes, 0, -1).Start(sim.Time(fa) * gap / sim.Time(cl.NumFA))
		}
	}
	if cfg.FailEvery > 0 {
		if eng != nil {
			// Chaos runs in barrier context (link state spans shards);
			// window quantization keeps it deterministic per shard count.
			next := cfg.FailEvery
			eng.OnBarrier(func(now sim.Time) {
				for now >= next {
					r.chaosStep()
					next += cfg.FailEvery
				}
			})
		} else {
			var chaos func()
			chaos = func() {
				r.chaosStep()
				s.After(cfg.FailEvery, chaos)
			}
			s.After(cfg.FailEvery, chaos)
		}
	}
	return r, nil
}

// chaosStep fails one random currently-up link and schedules its
// recovery. Overlapping failures may isolate an FA outright when the
// chaos period is short relative to HealAfter — deliberately so: that is
// exactly the condition the detector's reachability-hole anomaly exists
// to surface.
func (r *FabricRun) chaosStep() {
	n := r.Fab.NumLinks()
	pick := -1
	for try := 0; try < 8; try++ {
		i := r.rng.Intn(n)
		if r.Fab.LinkUp(i) {
			pick = i
			break
		}
	}
	if pick < 0 {
		return
	}
	r.Fab.FailLink(pick)
	i := pick
	if r.Eng != nil {
		// Heal in barrier context too: RestoreLink touches both endpoint
		// shards.
		r.Eng.At(r.Eng.Now()+r.Cfg.HealAfter, func() { r.Fab.RestoreLink(i) })
	} else {
		r.Sim.After(r.Cfg.HealAfter, func() { r.Fab.RestoreLink(i) })
	}
}

// Advance runs the simulation d further. It serializes concurrent
// callers, so the daemon's pacing goroutine and tests can share one run.
func (r *FabricRun) Advance(d sim.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.Eng != nil {
		r.Eng.Run(r.Eng.Now() + d)
		return
	}
	r.Sim.RunUntil(r.Sim.Now() + d)
}

// String describes the run for logs.
func (r *FabricRun) String() string {
	t := r.Fab.Topo
	return fmt.Sprintf("fabric K=%d: %d FAs, %d FE1s, %d FE2s, %d links, %.0f%% load",
		r.Cfg.K, t.NumFA, t.NumFE1, t.NumFE2, len(t.Links), 100*r.Cfg.Load)
}
