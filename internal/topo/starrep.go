// Star-replaced dual-port server-centric network (the "stellar
// transformation" of PAPERS.md): take a base d-regular graph — here a
// circulant on m nodes with offsets 1..d/2, deterministic and connected —
// and replace every base node with a star: one switch plus d dual-port
// servers. Each server spends one port on its local switch and one on the
// "stellar" link to the partner server across its base edge, so the
// servers themselves form the transit fabric and the switches are pure
// local interconnect. Traffic enters and leaves at the servers (the edge
// devices); routing is distance-decreasing multipath over live-graph BFS,
// loop-free by construction.
package topo

import "fmt"

// StarReplaced is the star-replacement of a circulant base graph.
type StarReplaced struct {
	M int // base (and switch) count
	D int // base degree (even); servers per switch

	links []GraphLink
}

// NewStarReplaced builds the star-replacement of the circulant graph
// C(m, {1..d/2}). d must be even and < m so every offset yields two
// distinct neighbors and the base is exactly d-regular.
func NewStarReplaced(m, d int) (*StarReplaced, error) {
	if d < 2 || d%2 != 0 {
		return nil, fmt.Errorf("topo: star base degree must be even and >= 2, got %d", d)
	}
	if m <= d {
		return nil, fmt.Errorf("topo: star base needs m > d, got m=%d d=%d", m, d)
	}
	g := &StarReplaced{M: m, D: d}
	// Local star links: switch u port i <-> server (u,i) port 0.
	for u := 0; u < m; u++ {
		for i := 0; i < d; i++ {
			g.links = append(g.links, GraphLink{A: u, APort: i, B: g.server(u, i), BPort: 0})
		}
	}
	// Stellar links: base edge (u, u+o) pairs server (u, 2(o-1)) with
	// server (u+o, 2(o-1)+1), each on its second port.
	for u := 0; u < m; u++ {
		for o := 1; o <= d/2; o++ {
			v := (u + o) % m
			s1, s2 := g.server(u, 2*(o-1)), g.server(v, 2*(o-1)+1)
			g.links = append(g.links, GraphLink{A: s1, APort: 1, B: s2, BPort: 1})
		}
	}
	return g, nil
}

// server returns the node index of switch u's i-th server. Switches
// occupy [0, M); servers follow.
func (g *StarReplaced) server(u, i int) int { return g.M + u*g.D + i }

// Spec implements Graph.
func (g *StarReplaced) Spec() string { return fmt.Sprintf("star:m=%d,d=%d", g.M, g.D) }

// NumNodes implements Graph.
func (g *StarReplaced) NumNodes() int { return g.M + g.M*g.D }

// NumTiers implements Graph: servers (edge) and switches (local core).
func (g *StarReplaced) NumTiers() int { return 2 }

// NumEdge implements Graph: every server sources and sinks traffic.
func (g *StarReplaced) NumEdge() int { return g.M * g.D }

// EdgeNode implements Graph.
func (g *StarReplaced) EdgeNode(e int) int { return g.M + e }

// Node implements Graph.
func (g *StarReplaced) Node(i int) NodeInfo {
	if i < g.M {
		return NodeInfo{Name: fmt.Sprintf("SW%d", i), Role: "SW", Tier: 1, Ports: g.D}
	}
	return NodeInfo{Name: fmt.Sprintf("SRV%d", i-g.M), Role: "SRV", Tier: 0, Ports: 2}
}

// GraphLinks implements Graph.
func (g *StarReplaced) GraphLinks() []GraphLink { return g.links }

// Routes implements Graph: distance-decreasing BFS multipath on the live
// graph, the natural scheme for a server-centric network with no up/down
// hierarchy.
func (g *StarReplaced) Routes(up []bool) (descend [][][]int, climb [][]int) {
	return bfsRoutes(g, up), make([][]int, g.NumNodes())
}
