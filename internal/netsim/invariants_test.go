package netsim_test

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"stardust/internal/fabric"
	"stardust/internal/netsim"
	"stardust/internal/parsim"
	"stardust/internal/sim"
)

// Property/invariant harness for the sharded Stardust transport:
// randomized host counts, traffic matrices and fail/heal programs drive
// raw packets through the full VOQ → credit → cell → reassembly pipeline,
// with every packet carrying a unique id so its fate (delivered in order,
// VOQ tail-drop, reassembly-timeout discard, queue drop) is accounted
// exactly. The same program runs at shards ∈ {1, 2, 4} and the canonical
// digests must be byte-identical — the transport extension of the fabric
// determinism contract, verified rather than assumed — and the loss-free
// variant is cross-checked against the solo StardustNet's delivered set.

// flowRec records one flow's deliveries. The terminal route hop runs
// pinned to the destination host's shard, so no locking is needed; the
// harness reads it only after the engine drains.
type flowRec struct {
	src, dst int
	sent     []uint64 // injected packet ids, in injection order
	got      []uint64 // delivered packet ids, in delivery order
}

// lockedIDs collects packet ids from hooks that fire on arbitrary shards
// (drops, discards); order is canonicalized by sorting before use.
type lockedIDs struct {
	mu  sync.Mutex
	ids []uint64
}

func (l *lockedIDs) record(p *netsim.Packet) {
	l.mu.Lock()
	l.ids = append(l.ids, uint64(p.Seq))
	l.mu.Unlock()
}

func (l *lockedIDs) sorted() []uint64 {
	out := append([]uint64(nil), l.ids...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// transportProgram is one randomized run: derived entirely from the seed,
// so every shard count executes the identical offered load and fail/heal
// schedule.
type transportProgram struct {
	seed     int64
	k        int
	hostsPer int
	flows    [][2]int // (src, dst) pairs
	packets  int      // per flow
	size     int      // packet bytes
	gap      sim.Time
	failN    int
	dur      sim.Time
}

func newProgram(seed int64) transportProgram {
	rng := rand.New(rand.NewSource(seed))
	k := 4
	hostsPer := 1 + rng.Intn(2) // 1 or 2 hosts per FA
	hosts := (k * k / 2) * hostsPer
	var flows [][2]int
	for src := 0; src < hosts; src++ {
		nDst := 1 + rng.Intn(2)
		for i := 0; i < nDst; i++ {
			flows = append(flows, [2]int{src, rng.Intn(hosts)}) // self allowed: hairpin path
		}
	}
	return transportProgram{
		seed:     seed,
		k:        k,
		hostsPer: hostsPer,
		flows:    flows,
		packets:  40 + rng.Intn(60),
		size:     512 + rng.Intn(9000),
		gap:      8 * sim.Microsecond,
		failN:    rng.Intn(4),
		dur:      sim.Time(1500) * sim.Microsecond,
	}
}

// transportOutcome is the canonical result of one run: a deterministic
// function of (program, seed) alone, independent of the shard count.
type transportOutcome struct {
	injected  uint64
	delivered uint64
	dropped   uint64
	discarded uint64
	digest    uint64
}

func (o transportOutcome) String() string {
	return fmt.Sprintf("injected=%d delivered=%d dropped=%d discarded=%d digest=%016x",
		o.injected, o.delivered, o.dropped, o.discarded, o.digest)
}

// runTransportProperty executes the program on `shards` event loops,
// checks the per-run invariants, and returns the canonical outcome.
func runTransportProperty(t *testing.T, prog transportProgram, shards int) transportOutcome {
	t.Helper()
	cl, err := fabric.ClosFor(prog.k)
	if err != nil {
		t.Fatal(err)
	}
	look := sim.Microsecond
	eng := parsim.New(parsim.Config{Shards: shards, Lookahead: look})
	fcfg := fabric.DefaultConfig(netsim.Bps(10e9*1.05), look, prog.seed)
	fab, err := fabric.NewSharded(eng, fcfg, cl, nil)
	if err != nil {
		t.Fatal(err)
	}
	hosts := cl.NumFA * prog.hostsPer
	sdc := netsim.DefaultStardust(10e9, cl.FAUplinks, look)
	net, err := netsim.NewShardedStardustNet(fab, sdc, hosts, prog.hostsPer)
	if err != nil {
		t.Fatal(err)
	}

	drops := &lockedIDs{}    // VOQ tail-drops + NIC/port queue drops
	discards := &lockedIDs{} // §4.1 reassembly-timer discards
	net.OnVOQDrop = drops.record
	net.OnReasmDiscard = discards.record
	net.VisitQueues(func(q *netsim.Queue) { q.OnDrop = drops.record })

	recs := make([]*flowRec, len(prog.flows))
	for fi, f := range prog.flows {
		fi, f := fi, f
		rec := &flowRec{src: f[0], dst: f[1]}
		recs[fi] = rec
		route := append(net.Route(f[0], f[1]), netsim.HandlerFunc(func(p *netsim.Packet) {
			rec.got = append(rec.got, uint64(p.Seq))
			p.Release()
		}))
		sm := net.HostSim(f[0])
		rng := rand.New(rand.NewSource(prog.seed ^ int64(fi)*104729))
		for i := 0; i < prog.packets; i++ {
			id := uint64(fi)<<32 | uint64(i+1)
			rec.sent = append(rec.sent, id)
			at := sim.Time(i)*prog.gap + sim.Time(rng.Intn(4000))*sim.Nanosecond
			sm.AtLaneFunc(at, 0, func() {
				p := netsim.NewPacket()
				p.Size = prog.size
				p.Seq = int64(id)
				p.SetRoute(route)
				p.SendOn()
			})
		}
	}

	// Random fail/heal schedule in barrier context; every link heals well
	// before the drain horizon.
	rng := rand.New(rand.NewSource(prog.seed ^ 0x5d))
	for i := 0; i < prog.failN; i++ {
		lk := rng.Intn(fab.NumLinks())
		failAt := prog.dur/4 + sim.Time(rng.Int63n(int64(prog.dur/4)))
		healAt := failAt + sim.Time(rng.Int63n(int64(prog.dur/4))) + 20*look
		eng.At(failAt, func() { fab.FailLink(lk) })
		eng.At(healAt, func() { fab.RestoreLink(lk) })
	}

	// Credit conservation and byte-accounting identities at every barrier.
	eng.OnBarrier(func(now sim.Time) {
		if err := net.CheckInvariants(); err != nil {
			t.Errorf("t=%d shards=%d: %v", now, shards, err)
		}
	})

	// The credit loops re-arm forever, so the engine never goes quiet; run
	// to a horizon comfortably past the last injection plus reassembly
	// timeouts and control-plane latency.
	horizon := prog.dur + sim.Time(prog.packets)*prog.gap + 4*sim.Millisecond
	eng.Run(horizon)

	if got := net.InFlight(); got != 0 {
		t.Fatalf("shards=%d: %d packets still in flight at drain", shards, got)
	}
	if err := net.CheckInvariants(); err != nil {
		t.Fatalf("shards=%d: %v", shards, err)
	}

	// Exact packet-fate accounting: the union of delivered, dropped and
	// discarded ids must be precisely the injected id set, each seen once.
	var injected, delivered uint64
	seen := make(map[uint64]int)
	for _, rec := range recs {
		injected += uint64(len(rec.sent))
		delivered += uint64(len(rec.got))
		for _, id := range rec.got {
			seen[id]++
		}
		// Per-VOQ in-order delivery: ids of one flow are injected in
		// ascending order and must arrive in ascending order (gaps from
		// discards allowed, reordering not).
		for i := 1; i < len(rec.got); i++ {
			if rec.got[i] <= rec.got[i-1] {
				t.Fatalf("shards=%d: flow %d->%d delivered %x after %x (reordered)",
					shards, rec.src, rec.dst, rec.got[i], rec.got[i-1])
			}
		}
	}
	for _, id := range drops.ids {
		seen[id]++
	}
	for _, id := range discards.ids {
		seen[id]++
	}
	if uint64(len(seen)) != injected {
		t.Fatalf("shards=%d: %d distinct packet fates for %d injected", shards, len(seen), injected)
	}
	for id, cnt := range seen {
		if cnt != 1 {
			t.Fatalf("shards=%d: packet %x accounted %d times", shards, id, cnt)
		}
	}

	// Cell conservation: every cell handed to the fabric either reached
	// the destination adapter or is counted as a fabric loss.
	var tc netsim.TransportCounters
	net.ReadCounters(&tc)
	if tc.CellsDelivered+tc.FabricDrops != tc.CellsSent {
		t.Fatalf("shards=%d: cell leak: %d delivered + %d lost != %d sent",
			shards, tc.CellsDelivered, tc.FabricDrops, tc.CellsSent)
	}
	if uint64(len(discards.ids)) != tc.ReasmTimeouts {
		t.Fatalf("shards=%d: %d discard hooks vs %d counted timeouts", shards, len(discards.ids), tc.ReasmTimeouts)
	}

	// Canonical full-state digest: per-flow delivery sequences, sorted
	// drop/discard sets, transport counters, and every host queue's and
	// directed fabric link's counters.
	h := fnv.New64a()
	var buf [8]byte
	w := func(v uint64) {
		for i := range buf {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	for _, rec := range recs {
		w(uint64(len(rec.got)))
		for _, id := range rec.got {
			w(id)
		}
	}
	for _, id := range drops.sorted() {
		w(id)
	}
	for _, id := range discards.sorted() {
		w(id)
	}
	w(tc.CellsSent)
	w(tc.CellsDelivered)
	w(tc.CreditsSent)
	w(tc.CreditBytes)
	w(tc.VOQDrops)
	w(tc.ReasmTimeouts)
	w(tc.ShippedBytes)
	w(tc.DeliveredBytes)
	net.VisitQueues(func(q *netsim.Queue) {
		w(q.FwdBytes)
		w(q.Forwarded)
		w(q.Drops)
	})
	var lc [2]fabric.LinkCounters
	for i := 0; i < fab.NumLinks(); i++ {
		fab.ReadLinkCounters(i, &lc)
		for d := 0; d < 2; d++ {
			w(lc[d].FwdBytes)
			w(lc[d].FwdCells)
			w(lc[d].Drops)
		}
	}
	return transportOutcome{
		injected:  injected,
		delivered: delivered,
		dropped:   uint64(len(drops.ids)),
		discarded: uint64(len(discards.ids)),
		digest:    h.Sum64(),
	}
}

// TestTransportPropertyInvariants is the transport property suite:
// randomized programs, each run at shards {1, 4} (and once at 2),
// asserting credit conservation, per-VOQ in-order delivery, exact
// packet-fate accounting — and byte-identical digests across shard
// counts.
func TestTransportPropertyInvariants(t *testing.T) {
	seeds := []int64{1, 7, 42}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			prog := newProgram(seed)
			ref := runTransportProperty(t, prog, 1)
			got4 := runTransportProperty(t, prog, 4)
			if got4 != ref {
				t.Fatalf("shards=4 diverged from shards=1:\n  1: %v\n  4: %v", ref, got4)
			}
			if seed == seeds[0] {
				got2 := runTransportProperty(t, prog, 2)
				if got2 != ref {
					t.Fatalf("shards=2 diverged from shards=1:\n  1: %v\n  2: %v", ref, got2)
				}
			}
		})
	}
}

// TestShardedTransportMatchesSolo cross-checks the sharded transport
// against the solo StardustNet over the solo per-link fabric: with no
// failures both must deliver every injected packet, per flow, in order —
// the delivered sets must be identical (the two engines break
// same-instant ties differently, so only the sets and per-flow order are
// comparable, not event interleavings).
func TestShardedTransportMatchesSolo(t *testing.T) {
	const seed = 11
	const k = 4
	const hostsPer = 2
	cl, err := fabric.ClosFor(k)
	if err != nil {
		t.Fatal(err)
	}
	hosts := cl.NumFA * hostsPer
	const packets = 60
	const size = 4000

	// Per-flow delivery logs indexed by source host: each log is written
	// only by its own flow's terminal handler (pinned to one shard), so
	// the slice-of-slices needs no locking.
	type delivery = [][]uint64

	program := func(route func(src, dst int) []netsim.Handler,
		schedule func(src int, at sim.Time, fire func())) delivery {
		got := make(delivery, hosts)
		for src := 0; src < hosts; src++ {
			src := src
			dst := (src + 3) % hosts
			r := append(route(src, dst), netsim.HandlerFunc(func(p *netsim.Packet) {
				got[src] = append(got[src], uint64(p.Seq))
				p.Release()
			}))
			for i := 0; i < packets; i++ {
				id := uint64(src)<<32 | uint64(i+1)
				schedule(src, sim.Time(i)*10*sim.Microsecond, func() {
					p := netsim.NewPacket()
					p.Size = size
					p.Seq = int64(id)
					p.SetRoute(r)
					p.SendOn()
				})
			}
		}
		return got
	}

	// Solo reference: StardustNet over the classic single-loop fabric.
	s := sim.New()
	soloFab, err := fabric.New(s, fabric.DefaultConfig(netsim.Bps(10e9*1.05), sim.Microsecond, seed), cl)
	if err != nil {
		t.Fatal(err)
	}
	sdc := netsim.DefaultStardust(10e9, cl.FAUplinks, sim.Microsecond)
	solo, err := netsim.NewStardustNet(s, sdc, hosts, hostsPer)
	if err != nil {
		t.Fatal(err)
	}
	soloFab.OnDeliver = solo.DeliverCell
	solo.UseFabric(soloFab)
	soloGot := program(solo.Route, func(_ int, at sim.Time, fire func()) { s.At(at, fire) })
	s.RunUntil(20 * sim.Millisecond)

	// Sharded run of the same program at 4 shards.
	eng := parsim.New(parsim.Config{Shards: 4, Lookahead: sim.Microsecond})
	shFab, err := fabric.NewSharded(eng, fabric.DefaultConfig(netsim.Bps(10e9*1.05), sim.Microsecond, seed), cl, nil)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := netsim.NewShardedStardustNet(shFab, sdc, hosts, hostsPer)
	if err != nil {
		t.Fatal(err)
	}
	shGot := program(sh.Route, func(src int, at sim.Time, fire func()) {
		sh.HostSim(src).AtLaneFunc(at, 0, fire)
	})
	eng.Run(20 * sim.Millisecond)

	for src := 0; src < hosts; src++ {
		if len(soloGot[src]) != packets {
			t.Fatalf("solo flow %d delivered %d of %d", src, len(soloGot[src]), packets)
		}
		if len(shGot[src]) != packets {
			t.Fatalf("sharded flow %d delivered %d of %d (fabric drops %d, timeouts %d)",
				src, len(shGot[src]), packets, sh.FabricDrops(), sh.ReasmTimeouts())
		}
		for i := range soloGot[src] {
			if soloGot[src][i] != shGot[src][i] {
				t.Fatalf("flow %d delivery %d: solo id %x vs sharded %x", src, i, soloGot[src][i], shGot[src][i])
			}
		}
	}
	if sh.ReasmTimeouts() != 0 || solo.ReasmTimeouts != 0 {
		t.Fatalf("loss-free run discarded packets: solo %d, sharded %d", solo.ReasmTimeouts, sh.ReasmTimeouts())
	}
}
