package netsim

import "stardust/internal/sim"

// PriorityQueue is a two-band strict-priority output queue (Appendix F's
// traffic-class scenario): band-0 (high) packets always transmit before
// band-1 (low). Bands share the byte budget; when full, low-priority
// packets are dropped first, then arriving highs tail-drop.
type PriorityQueue struct {
	Name     string
	Sim      *sim.Simulator
	Rate     Bps
	MaxBytes int

	// Classify returns the band (0 = high, 1 = low) for a packet.
	Classify func(*Packet) int

	bands   [2]pktRing
	cur     *Packet
	curBand int
	bytes   int
	busy    bool

	Drops     [2]uint64
	Forwarded [2]uint64
}

// NewPriorityQueue builds a two-band strict priority queue.
func NewPriorityQueue(s *sim.Simulator, name string, rate Bps, maxBytes int, classify func(*Packet) int) *PriorityQueue {
	return &PriorityQueue{Name: name, Sim: s, Rate: rate, MaxBytes: maxBytes, Classify: classify}
}

func (q *PriorityQueue) txTime(bytes int) sim.Time {
	return sim.Time(float64(bytes*8) / float64(q.Rate) * float64(sim.Second))
}

// Receive implements Handler.
func (q *PriorityQueue) Receive(p *Packet) {
	band := 0
	if q.Classify != nil {
		band = q.Classify(p) & 1
	}
	if q.bytes+p.Size > q.MaxBytes {
		// Evict queued low-priority bytes for an arriving high, newest
		// first (the in-service packet is never evicted).
		if band == 0 {
			for q.bands[1].len() > 0 && q.bytes+p.Size > q.MaxBytes {
				victim := q.bands[1].popTail()
				q.bytes -= victim.Size
				q.Drops[1]++
				victim.Release()
			}
		}
		if q.bytes+p.Size > q.MaxBytes {
			q.Drops[band]++
			p.Release()
			return
		}
	}
	q.bytes += p.Size
	if q.busy {
		q.bands[band].push(p)
		return
	}
	q.busy = true
	q.cur, q.curBand = p, band
	q.Sim.AfterAction(q.txTime(p.Size), q, 0)
}

// Act implements sim.Action: the current packet finished serializing.
func (q *PriorityQueue) Act(uint64) {
	p, band := q.cur, q.curBand
	q.cur = nil
	q.bytes -= p.Size
	q.Forwarded[band]++
	p.SendOn() // p may be released downstream; do not touch it again
	for b := 0; b < 2; b++ {
		if next := q.bands[b].pop(); next != nil {
			q.cur, q.curBand = next, b
			q.Sim.AfterAction(q.txTime(next.Size), q, 0)
			return
		}
	}
	q.busy = false
}
