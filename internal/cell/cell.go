// Package cell implements Stardust's data unit: fixed-maximum-size cells
// carrying packed packet fragments (§3.2, §3.4).
//
// A Fabric Adapter chops a credit-worth of queued packets into cells whose
// payload exactly fills the Fabric Element data-path width. A cell payload
// is a window of a per-VOQ byte stream in which each packet is framed by a
// 4-byte length prefix; cells carry a sequence number so the destination
// Fabric Adapter can reassemble the stream (and thus the packets) even when
// cells arrive out of order (§4.1).
//
// The package provides both a descriptor level (cells reference packet
// segments, no payload bytes are materialized — used by the simulators) and
// a byte level (full wire encode/decode — used where real data moves).
package cell

import (
	"encoding/binary"
	"fmt"
)

// HeaderSize is the on-wire size of a cell header in bytes.
const HeaderSize = 8

// FrameOverhead is the per-packet in-stream framing (length prefix) in
// bytes; it is how packing keeps packet boundaries recoverable.
const FrameOverhead = 4

// DefaultCellSize is the paper's canonical maximum cell size (§3.2).
const DefaultCellSize = 256

// Flags carried in a cell header.
const (
	FlagFCI  uint8 = 1 << 0 // Fabric Congestion Indication (§4.2)
	FlagCtrl uint8 = 1 << 1 // control cell (credit/reachability), not data
)

// Header is the small cell header holding the destination and a sequence
// number that allows reassembling cells into packets (§3.2).
//
// Wire layout (8 bytes, big endian):
//
//	byte 0   : flags (high nibble) | traffic class (low nibble)
//	bytes 1-2: source Fabric Adapter
//	bytes 3-4: destination Fabric Adapter
//	bytes 5-6: sequence number
//	byte 7   : payload length - 1
type Header struct {
	Flags      uint8  // 4 usable bits
	Src        uint16 // source Fabric Adapter
	Dst        uint16 // destination Fabric Adapter
	Seq        uint16 // per (Src,Dst,TC) stream sequence number
	TC         uint8  // traffic class (4 usable bits)
	PayloadLen uint8  // payload bytes - 1 (0 means 1 byte, 255 means 256)
}

// Encode writes the header into b, which must be at least HeaderSize long.
func (h Header) Encode(b []byte) {
	_ = b[HeaderSize-1]
	b[0] = h.Flags<<4 | h.TC&0x0f
	binary.BigEndian.PutUint16(b[1:], h.Src)
	binary.BigEndian.PutUint16(b[3:], h.Dst)
	binary.BigEndian.PutUint16(b[5:], h.Seq)
	b[7] = h.PayloadLen
}

// Decode parses a header from b.
func Decode(b []byte) (Header, error) {
	if len(b) < HeaderSize {
		return Header{}, fmt.Errorf("cell: short header: %d bytes", len(b))
	}
	return Header{
		Flags:      b[0] >> 4,
		TC:         b[0] & 0x0f,
		Src:        binary.BigEndian.Uint16(b[1:]),
		Dst:        binary.BigEndian.Uint16(b[3:]),
		Seq:        binary.BigEndian.Uint16(b[5:]),
		PayloadLen: b[7],
	}, nil
}

// PayloadBytes returns the payload length encoded in the header (1..256).
func (h Header) PayloadBytes() int { return int(h.PayloadLen) + 1 }

// SetPayloadBytes stores n (1..256) into the header.
func (h *Header) SetPayloadBytes(n int) {
	if n < 1 || n > 256 {
		panic(fmt.Sprintf("cell: payload length %d out of range [1,256]", n))
	}
	h.PayloadLen = uint8(n - 1)
}

// PacketRef identifies a packet inside the simulators without carrying its
// bytes.
type PacketRef struct {
	ID   uint64 // globally unique packet id
	Size int    // packet size in bytes (as received from the host)
}

// Segment is a contiguous byte range of one packet carried inside a cell.
type Segment struct {
	Packet PacketRef
	Offset int // offset into the packet
	Len    int // number of packet bytes in this cell
	First  bool
	Last   bool
}

// Cell is a descriptor-level cell: header plus the packet segments its
// payload carries. PayloadSize includes per-packet framing bytes.
type Cell struct {
	Header      Header
	Segments    []Segment
	PayloadSize int
}

// TotalSize returns the on-wire cell size (header + payload).
func (c *Cell) TotalSize() int { return HeaderSize + c.PayloadSize }
